"""One fleet device: spec, live run, checkpointing and fingerprints.

A :class:`DeviceSpec` is the declarative, JSON-safe description of one
simulated SSD and its workload — the fleet analogue of an engine
:class:`~repro.experiments.engine.Cell`: shippable to a worker
process, hashable for content-addressed memoization, and sufficient to
rebuild the run from scratch.

A :class:`DeviceRun` is the live system built from a spec: kernel,
NAND array, FTL, controller and host, preconditioned and positioned at
the start of its measured phase.  It advances in bounded event quanta
(so a worker can round-robin a shard), snapshots itself to a versioned
file at any event boundary (:mod:`repro.fleet.snapshot`), and resumes
byte-identically: the whole object graph pickles in one piece, so the
kernel's pending events, the host's in-flight completion callbacks and
the FTL's references into the array all survive with identity intact.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.experiments.runner import (
    ExperimentConfig,
    FTL_REGISTRY,
    begin_measured_phase,
    build_system,
    scenario_host,
    warmup_device,
)
from repro.fleet.snapshot import (
    SnapshotError,
    SnapshotMismatchError,
    read_snapshot,
    read_snapshot_header,
    write_snapshot,
)
from repro.qos.host import MultiTenantHost
from repro.scenarios.base import Scenario, scenario_from_spec


def resolved_stepping(config: ExperimentConfig) -> str:
    """The stepping mode a config actually runs under.

    ``auto`` resolves to event stepping (see
    :func:`~repro.experiments.runner.build_system`); snapshot headers
    record the resolved mode so two spellings of the same behaviour
    stay resume-compatible.
    """
    return "event" if config.stepping == "auto" else config.stepping


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """Declarative description of one simulated device.

    Attributes:
        device_id: fleet-wide device index (also the per-device
            scenario reseed coordinate).
        ftl_name: an :data:`~repro.experiments.runner.FTL_REGISTRY`
            key.
        scenario: the workload's JSON-safe scenario spec (see
            :meth:`repro.scenarios.base.Scenario.spec`).
        config: system configuration (geometry, timing, kernel,
            stepping, ...).
        arbiter: QoS arbitration policy name; when set and the
            scenario carries tenant bindings, the device runs behind
            the multi-tenant submission-queue front-end.
        max_outstanding: QoS admission-gate bound (ignored without an
            arbiter).
    """

    device_id: int
    ftl_name: str
    scenario: Dict[str, Any]
    config: ExperimentConfig = ExperimentConfig()
    arbiter: Optional[str] = None
    max_outstanding: Optional[int] = 8

    def __post_init__(self) -> None:
        if self.ftl_name not in FTL_REGISTRY:
            raise KeyError(
                f"unknown FTL {self.ftl_name!r}; choose from "
                f"{sorted(FTL_REGISTRY)}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot, invertible via :meth:`from_dict`."""
        return {
            "device_id": self.device_id,
            "ftl_name": self.ftl_name,
            "scenario": self.scenario,
            "config": self.config.to_dict(),
            "arbiter": self.arbiter,
            "max_outstanding": self.max_outstanding,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DeviceSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            device_id=int(data["device_id"]),
            ftl_name=str(data["ftl_name"]),
            scenario=dict(data["scenario"]),
            config=ExperimentConfig.from_dict(data["config"]),
            arbiter=(None if data.get("arbiter") is None
                     else str(data["arbiter"])),
            max_outstanding=(None if data.get("max_outstanding") is None
                             else int(data["max_outstanding"])),
        )

    def cache_key(self) -> str:
        """Content hash for fleet-level result memoization.

        Hashes the full spec plus the package and schema versions —
        same invalidation rules as an engine cell key.
        """
        from repro import __version__
        from repro.experiments.engine import SCHEMA_VERSION
        spec = {
            "schema": SCHEMA_VERSION,
            "version": __version__,
            "kind": "fleet_device",
            "spec": self.to_dict(),
        }
        text = json.dumps(spec, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


class DeviceRun:
    """A live simulated device positioned in its measured phase.

    Build one with :meth:`build` (fresh) or :meth:`load` (from a
    snapshot); drive it with :meth:`advance`; read it out with
    :meth:`result` once :attr:`done`.
    """

    def __init__(self, spec: DeviceSpec, sim, array, buffer, ftl,
                 controller, host, baseline: Dict[str, int],
                 qos: bool) -> None:
        self.spec = spec
        self.sim = sim
        self.array = array
        self.buffer = buffer
        self.ftl = ftl
        self.controller = controller
        self.host = host
        self.baseline = baseline
        self.qos = qos
        #: events already processed when the measured phase began;
        #: measured_events counts from here.
        self.measured_start = sim.processed

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def build(cls, spec: DeviceSpec) -> "DeviceRun":
        """Build, precondition and start a device from its spec."""
        sim, array, buffer, ftl, controller = build_system(
            spec.ftl_name, spec.config)
        scenario = scenario_from_spec(spec.scenario)
        warmup_device(sim, controller, ftl, spec.config,
                      footprint=scenario.footprint)
        baseline, _stats = begin_measured_phase(controller, ftl,
                                                spec.config)
        qos = spec.arbiter is not None and bool(
            scenario.tenant_bindings())
        if qos:
            from repro.qos.runner import tenant_specs_from_scenario
            tenants = tenant_specs_from_scenario(scenario)
            host = MultiTenantHost(
                sim, controller, tenants, arbiter=spec.arbiter,
                max_outstanding=spec.max_outstanding)
        else:
            host = scenario_host(sim, controller, scenario)
        host.start()
        return cls(spec, sim, array, buffer, ftl, controller, host,
                   baseline, qos)

    # ------------------------------------------------------------------
    # driving

    @property
    def done(self) -> bool:
        """Whether the event queue has drained (run complete)."""
        return self.sim.peek_time() is None

    @property
    def measured_events(self) -> int:
        """Events processed since the measured phase began."""
        return self.sim.processed - self.measured_start

    def advance(self, max_events: int) -> int:
        """Process up to ``max_events`` events; returns the number run."""
        before = self.sim.processed
        self.sim.run(max_events=max_events)
        return self.sim.processed - before

    def run_to_completion(self) -> None:
        """Drain the event queue."""
        self.sim.run()

    # ------------------------------------------------------------------
    # checkpointing

    def snapshot_header(self) -> Dict[str, Any]:
        """The context fields recorded alongside the pickled state."""
        return {
            "kind": "device_run",
            "kernel": self.spec.config.kernel,
            "stepping": resolved_stepping(self.spec.config),
            "ftl_name": self.spec.ftl_name,
            "device_id": self.spec.device_id,
            "sim_now": repr(self.sim.now),
            "events": self.sim.processed,
        }

    def save(self, path: "Path | str",
             extra_header: Optional[Dict[str, Any]] = None
             ) -> Dict[str, Any]:
        """Checkpoint the full run state to ``path`` (crash-safe).

        ``extra_header`` entries (e.g. the owning fleet's spec hash)
        are merged into the snapshot header for resume-time checks.
        """
        if "_execute" in self.controller.__dict__:
            raise SnapshotError(
                "cannot snapshot a device while a tracer is "
                "installed: the tracer patches the controller with an "
                "unpicklable closure.  Detach the tracer (or trace "
                "only untraced fleet runs) and retry.")
        header = self.snapshot_header()
        if extra_header:
            header.update(extra_header)
        return write_snapshot(path, self, header)

    @classmethod
    def load(cls, path: "Path | str",
             expect_config: Optional[ExperimentConfig] = None,
             expect_fleet_hash: Optional[str] = None
             ) -> "DeviceRun":
        """Resume a device from a snapshot file.

        ``expect_config`` (usually the resuming fleet's config) pins
        the kernel and stepping mode; a mismatch refuses with a clear
        error instead of risking divergence.  ``expect_fleet_hash``
        pins the owning :class:`~repro.fleet.service.FleetSpec`'s
        content hash: snapshot paths are named only by device id, so
        two different fleets sharing a checkpoint directory would
        otherwise silently splice each other's devices in.  A snapshot
        written without a fleet hash (direct ``save()`` callers) is
        accepted.
        """
        expect_kernel = expect_stepping = None
        if expect_config is not None:
            expect_kernel = expect_config.kernel
            expect_stepping = resolved_stepping(expect_config)
        header, run = read_snapshot(path, expect_kernel=expect_kernel,
                                    expect_stepping=expect_stepping)
        if header.get("kind") != "device_run" \
                or not isinstance(run, cls):
            raise SnapshotError(
                f"{path} is a valid snapshot but not a device run "
                f"(kind={header.get('kind')!r})")
        written_for = header.get("fleet_hash")
        if expect_fleet_hash is not None and written_for is not None \
                and written_for != expect_fleet_hash:
            raise SnapshotMismatchError(
                f"{path} was checkpointed for a different fleet spec "
                f"(fleet hash {written_for[:12]}… != expected "
                f"{expect_fleet_hash[:12]}…); resuming it here would "
                f"splice a foreign device into this fleet.  Point "
                f"--checkpoint-dir at this fleet's own directory.")
        return run

    @staticmethod
    def peek(path: "Path | str") -> Dict[str, Any]:
        """A snapshot's header without loading any state."""
        return read_snapshot_header(path)

    # ------------------------------------------------------------------
    # results

    def result(self) -> Dict[str, Any]:
        """Measured-phase outcome as a JSON-safe dict.

        Mirrors :class:`~repro.experiments.runner.RunResult` (stats,
        counter deltas, events) plus the device identity, completion
        flag, a lifetime proxy (block erases), and — for QoS-fronted
        devices — per-tenant SLO summaries.
        """
        final = dict(self.ftl.counters())
        deltas = {key: final[key] - self.baseline.get(key, 0)
                  for key in final}
        stats = self.controller.stats
        host_programs = deltas.get("host_programs", 0)
        total_programs = (host_programs
                          + deltas.get("gc_programs", 0)
                          + deltas.get("backup_programs", 0))
        out: Dict[str, Any] = {
            "device_id": self.spec.device_id,
            "ftl_name": self.spec.ftl_name,
            "completed": self.done,
            "events": self.sim.processed,
            "measured_events": self.measured_events,
            "sim_now": repr(self.sim.now),
            "elapsed": stats.elapsed,
            "completed_requests": stats.completed_requests,
            "iops": (stats.iops() if stats.completed_requests
                     and stats.elapsed > 0.0 else None),
            "counters": deltas,
            "erases": deltas.get("erases", 0),
            "write_amplification": (total_programs / host_programs
                                    if host_programs else None),
            "fingerprint": self.fingerprint(),
        }
        if self.qos:
            out["tenants"] = {
                name: _tenant_projection(summary)
                for name, summary in
                self.host.accountant.summary().items()
            }
        else:
            out["tenants"] = {}
        return out

    def fingerprint(self) -> str:
        """SHA-256 over the device's full measured trace surface.

        Canonical JSON of the measured SimStats, FTL counter deltas,
        clock, event count and erase totals — any behavioural
        divergence between two runs lands in at least one of these, so
        equal fingerprints mean byte-identical runs for every metric
        the fleet reports.
        """
        final = dict(self.ftl.counters())
        deltas = {key: final[key] - self.baseline.get(key, 0)
                  for key in final}
        surface = {
            "stats": self.controller.stats.to_dict(),
            "counters": deltas,
            "now": repr(self.sim.now),
            "events": self.sim.processed,
            "total_erases": self.array.total_erases,
        }
        text = json.dumps(surface, sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _tenant_projection(summary: Dict[str, Any]) -> Dict[str, Any]:
    """The fleet-aggregable slice of one tenant's SLO summary."""
    read = summary.get("read_latency") or {}
    write = summary.get("write_latency") or {}
    return {
        "reads": summary.get("completed_reads", 0),
        "writes": summary.get("completed_writes", 0),
        "read_violations": summary.get("read_violations", 0),
        "write_violations": summary.get("write_violations", 0),
        "read_p99": read.get("p99"),
        "write_p99": write.get("p99"),
    }


def device_scenario_spec(base_spec: Dict[str, Any], fleet_seed: int,
                         device_id: int) -> Dict[str, Any]:
    """Per-device variant of a shared scenario spec.

    Re-seeds generator scenarios per device (stable across processes:
    :func:`~repro.scenarios.base.scenario_seed` over the fleet seed
    and device id), so a thousand devices running the same preset see
    a thousand distinct — but individually reproducible — workloads.
    Specs without a seed field (e.g. literal stream lists) are shared
    verbatim.
    """
    from repro.scenarios.base import scenario_seed
    spec = dict(base_spec)
    if "seed" in spec:
        spec["seed"] = scenario_seed(fleet_seed, "device", device_id)
    return spec
