"""Fleet simulation service: sharded devices with deterministic
checkpoint/resume.

The production-scale serving layer over the single-device simulator:

* :mod:`repro.fleet.snapshot` — versioned snapshot files; a run
  checkpointed at an event boundary resumes byte-identically.
* :mod:`repro.fleet.device` — :class:`DeviceSpec` (declarative,
  hashable) and :class:`DeviceRun` (live system; build / advance /
  save / load / result).
* :mod:`repro.fleet.shard` — deterministic device-to-worker ranges.
* :mod:`repro.fleet.worker` — per-shard serving loop (round-robin
  quanta, periodic checkpoints).
* :mod:`repro.fleet.aggregate` — fleet-wide SLO/lifetime/WA rollups
  and the fleet fingerprint.
* :mod:`repro.fleet.service` — :func:`run_fleet`, the engine behind
  the ``repro serve`` CLI (:mod:`repro.fleet.cli`).
* :mod:`repro.fleet.supervisor` / :mod:`repro.fleet.health` — the
  supervision layer: heartbeat liveness, hang/deadline kills,
  deterministic-backoff retries, poison-device quarantine and the
  fleet-wide circuit breaker.
* :mod:`repro.fleet.chaos` — seeded, serializable fault-injection
  plans (worker kills, hangs, checkpoint-write crashes, submission
  errors, device crashes) for drilling the supervisor; chaos runs
  with sufficient retry budget reproduce the undisturbed fleet
  fingerprint exactly.

See ``docs/FLEET.md`` for the architecture and the snapshot format.
"""

from repro.fleet.aggregate import FleetReport
from repro.fleet.chaos import (
    CHAOS_KINDS,
    ChaosEvent,
    ChaosPlan,
    poison_device,
    random_plan,
)
from repro.fleet.device import DeviceRun, DeviceSpec
from repro.fleet.health import (
    CircuitOpenError,
    DeviceFailure,
    FleetHealth,
    ShardFailedError,
    ShardHealth,
    SupervisionError,
    SupervisionPolicy,
)
from repro.fleet.service import (
    FleetServeResult,
    FleetSpec,
    fleet_config,
    run_fleet,
)
from repro.fleet.shard import shard_ranges
from repro.fleet.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    SnapshotFormatError,
    SnapshotMismatchError,
    read_snapshot,
    read_snapshot_header,
    write_snapshot,
)
from repro.fleet.supervisor import FleetSupervisor
from repro.fleet.worker import ShardTask, run_shard

__all__ = [
    "CHAOS_KINDS",
    "ChaosEvent",
    "ChaosPlan",
    "CircuitOpenError",
    "DeviceFailure",
    "DeviceRun",
    "DeviceSpec",
    "FleetHealth",
    "FleetReport",
    "FleetServeResult",
    "FleetSpec",
    "FleetSupervisor",
    "ShardFailedError",
    "ShardHealth",
    "ShardTask",
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotMismatchError",
    "SupervisionError",
    "SupervisionPolicy",
    "fleet_config",
    "poison_device",
    "random_plan",
    "read_snapshot",
    "read_snapshot_header",
    "run_fleet",
    "run_shard",
    "shard_ranges",
    "write_snapshot",
]
