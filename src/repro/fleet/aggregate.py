"""Fleet-wide aggregation of per-device results.

Merges the JSON-safe per-device result dicts
(:meth:`repro.fleet.device.DeviceRun.result`) into one
:class:`FleetReport`: run totals (events, requests, IOPS), lifetime
proxies (erase totals / max / mean — the wear the paper's RPS argument
is about), write amplification, per-tenant SLO rollups, and a fleet
fingerprint (SHA-256 over the sorted per-device fingerprints) that
makes "kill/resume changed nothing" a one-string comparison.

Everything also lands in a labeled
:class:`~repro.observability.metrics.MetricsRegistry`
(:meth:`FleetReport.to_metrics`), so fleet serving reports through the
same observability surface as single-device runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from typing import Any, Dict, List, Optional, Sequence

from repro.observability.metrics import MetricsRegistry


def _mean(values: Sequence[float]) -> Optional[float]:
    finite = [v for v in values
              if v is not None and not math.isnan(v)]
    return sum(finite) / len(finite) if finite else None


@dataclasses.dataclass
class FleetReport:
    """Aggregated outcome of one fleet pass.

    ``device_results`` holds the raw per-device dicts in device-id
    order; everything else is derived from them.  Supervised passes
    also carry ``health`` (the serialized
    :class:`~repro.fleet.health.FleetHealth`) and ``quarantined``
    (poison devices excised mid-run); a report with quarantined
    devices is **degraded** — complete for every surviving device,
    with a fingerprint that covers only what was served.
    """

    device_results: List[Dict[str, Any]]
    health: Optional[Dict[str, Any]] = None
    quarantined: List[Dict[str, Any]] = dataclasses.field(
        default_factory=list)

    def __post_init__(self) -> None:
        self.device_results = sorted(self.device_results,
                                     key=lambda r: r["device_id"])

    # -- derived scalars -----------------------------------------------

    @property
    def devices(self) -> int:
        return len(self.device_results)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.device_results if r["completed"])

    @property
    def checkpointed(self) -> int:
        """Devices stopped mid-run (awaiting a resume)."""
        return self.devices - self.completed

    @property
    def degraded(self) -> bool:
        """Whether the pass lost devices to quarantine.

        A degraded report is still exact for every device it covers —
        the fingerprint hashes the *served* devices only — but it is
        not the full fleet, so it must not be compared against an
        undegraded run's fingerprint.
        """
        return bool(self.quarantined)

    def totals(self) -> Dict[str, Any]:
        """Fleet-wide sums and derived ratios."""
        results = self.device_results
        counters: Dict[str, int] = {}
        for r in results:
            for key, value in r["counters"].items():
                counters[key] = counters.get(key, 0) + value
        host = counters.get("host_programs", 0)
        relocated = (host + counters.get("gc_programs", 0)
                     + counters.get("backup_programs", 0))
        erases = [r["erases"] for r in results]
        iops = [r["iops"] for r in results if r["iops"] is not None]
        return {
            "devices": self.devices,
            "completed_devices": self.completed,
            "checkpointed_devices": self.checkpointed,
            "events": sum(r["events"] for r in results),
            "completed_requests": sum(r["completed_requests"]
                                      for r in results),
            "counters": counters,
            "erases_total": sum(erases),
            "erases_max": max(erases) if erases else 0,
            "erases_mean": _mean(erases),
            "write_amplification": (relocated / host if host
                                    else None),
            "iops_sum": sum(iops) if iops else None,
            "iops_mean": _mean(iops),
            "quarantined_devices": len(self.quarantined),
            "degraded": self.degraded,
            "fingerprint": self.fingerprint(),
        }

    def per_tenant(self) -> Dict[str, Dict[str, Any]]:
        """Per-tenant rollup across every device serving the tenant.

        Counts sum; p99s aggregate as the fleet-wide *worst* (max) and
        mean — a per-device percentile cannot be re-percentiled
        without the raw samples, and the max is the SLO-relevant
        bound.
        """
        merged: Dict[str, Dict[str, Any]] = {}
        p99s: Dict[str, Dict[str, List[float]]] = {}
        for r in self.device_results:
            for name, t in r.get("tenants", {}).items():
                agg = merged.setdefault(name, {
                    "devices": 0, "reads": 0, "writes": 0,
                    "read_violations": 0, "write_violations": 0,
                })
                agg["devices"] += 1
                agg["reads"] += t["reads"]
                agg["writes"] += t["writes"]
                agg["read_violations"] += t["read_violations"]
                agg["write_violations"] += t["write_violations"]
                samples = p99s.setdefault(name,
                                          {"read": [], "write": []})
                for side in ("read", "write"):
                    value = t.get(f"{side}_p99")
                    if value is not None and not math.isnan(value):
                        samples[side].append(value)
        for name, samples in p99s.items():
            for side in ("read", "write"):
                values = samples[side]
                merged[name][f"{side}_p99_max"] = \
                    max(values) if values else None
                merged[name][f"{side}_p99_mean"] = _mean(values)
        return merged

    def fingerprint(self) -> str:
        """SHA-256 over the sorted per-device fingerprints.

        Two fleet passes with equal fingerprints ran byte-identical
        simulations on every device — the oracle the kill/resume tests
        and the CI smoke job compare.
        """
        digest = hashlib.sha256()
        for r in self.device_results:
            digest.update(f"{r['device_id']}:{r['fingerprint']};"
                          .encode("ascii"))
        return digest.hexdigest()

    # -- projections ---------------------------------------------------

    def to_metrics(self,
                   registry: Optional[MetricsRegistry] = None
                   ) -> MetricsRegistry:
        """Publish the aggregate into a labeled metrics registry."""
        registry = registry or MetricsRegistry()
        totals = self.totals()
        registry.counter("fleet.devices").inc(totals["devices"])
        registry.counter("fleet.devices_completed").inc(
            totals["completed_devices"])
        registry.counter("fleet.events").inc(totals["events"])
        registry.counter("fleet.completed_requests").inc(
            totals["completed_requests"])
        registry.counter("fleet.erases").inc(totals["erases_total"])
        for key, value in totals["counters"].items():
            if value >= 0:
                registry.counter("fleet.ftl", counter=key).inc(value)
            else:
                # Some FTL "counters" are signed levels (e.g. a quota
                # balance); a monotonic Counter would reject them.
                registry.gauge("fleet.ftl_level",
                               counter=key).set(value)
        if totals["write_amplification"] is not None:
            registry.gauge("fleet.write_amplification").set(
                totals["write_amplification"])
        if totals["iops_sum"] is not None:
            registry.gauge("fleet.iops_sum").set(totals["iops_sum"])
        registry.gauge("fleet.erases_max").set(totals["erases_max"])
        for r in self.device_results:
            registry.histogram("fleet.device_erases").observe(
                r["erases"])
            if r["iops"] is not None:
                registry.histogram("fleet.device_iops").observe(
                    r["iops"])
        for name, tenant in self.per_tenant().items():
            registry.counter("fleet.tenant_reads",
                             tenant=name).inc(tenant["reads"])
            registry.counter("fleet.tenant_writes",
                             tenant=name).inc(tenant["writes"])
            registry.counter(
                "fleet.tenant_read_violations",
                tenant=name).inc(tenant["read_violations"])
            registry.counter(
                "fleet.tenant_write_violations",
                tenant=name).inc(tenant["write_violations"])
            if tenant.get("write_p99_max") is not None:
                registry.gauge("fleet.tenant_write_p99_max",
                               tenant=name).set(
                    tenant["write_p99_max"])
        if self.quarantined:
            registry.counter("fleet.quarantined_devices").inc(
                len(self.quarantined))
        if self.health is not None:
            registry.counter("fleet.supervisor.attempts").inc(
                self.health.get("attempts_total", 0))
            registry.counter("fleet.supervisor.retries").inc(
                self.health.get("retries_total", 0))
            registry.counter("fleet.supervisor.kills").inc(
                self.health.get("kills_total", 0))
            registry.gauge("fleet.supervisor.wall_lost").set(
                self.health.get("wall_lost", 0.0))
        return registry

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe report (``--json`` / CI assertions)."""
        out = {
            "totals": self.totals(),
            "tenants": self.per_tenant(),
            "devices": self.device_results,
        }
        if self.health is not None:
            out["health"] = self.health
        if self.quarantined:
            out["quarantined"] = self.quarantined
        return out

    def render(self) -> str:
        """Human-readable fleet report."""
        totals = self.totals()
        lines = [
            "fleet report",
            f"  devices            {totals['devices']}"
            f" ({totals['completed_devices']} completed,"
            f" {totals['checkpointed_devices']} checkpointed)",
            f"  events             {totals['events']}",
            f"  completed requests {totals['completed_requests']}",
            f"  erases             {totals['erases_total']}"
            f" (max {totals['erases_max']} /"
            f" mean {totals['erases_mean'] or 0:.1f} per device)",
        ]
        if totals["write_amplification"] is not None:
            lines.append(f"  write amplification"
                         f" {totals['write_amplification']:.3f}")
        if totals["iops_sum"] is not None:
            lines.append(f"  aggregate IOPS     "
                         f"{totals['iops_sum']:.0f}")
        tenants = self.per_tenant()
        if tenants:
            lines.append("  tenants")
            for name, t in tenants.items():
                p99 = t.get("write_p99_max")
                p99_text = f"{p99 * 1e3:.3f} ms" if p99 is not None \
                    else "-"
                lines.append(
                    f"    {name:<12} devices {t['devices']:>4}  "
                    f"r/w {t['reads']}/{t['writes']}  "
                    f"viol {t['read_violations']}"
                    f"/{t['write_violations']}  "
                    f"worst write p99 {p99_text}")
        if self.health is not None:
            lines.append(
                f"  supervision        "
                f"{self.health.get('attempts_total', 0)} attempts · "
                f"{self.health.get('retries_total', 0)} retries · "
                f"{self.health.get('kills_total', 0)} kills · "
                f"{self.health.get('wall_lost', 0.0):.2f}s lost")
        if self.quarantined:
            ids = sorted(entry["device_id"]
                         for entry in self.quarantined)
            lines.append(f"  quarantined        {ids} (DEGRADED)")
        lines.append(f"  fingerprint        "
                     f"{totals['fingerprint'][:16]}…")
        return "\n".join(lines)
