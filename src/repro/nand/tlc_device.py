"""TLC device state model: blocks and chips enforcing TLC schemes.

The MLC :class:`~repro.nand.block.Block`/:class:`~repro.nand.chip.Chip`
pair hard-codes two pages per word line; this module provides the
3-bit equivalents so the TLC generalisation of RPS can be exercised
against an enforcing device, not just against order lists.  The model
is deliberately scoped to what the extension needs — program/read/
erase with constraint enforcement, history and accounting — and reuses
the MLC exception types.
"""

from __future__ import annotations

from typing import List, Optional

from repro.nand.errors import (
    EccUncorrectableError,
    PageStateError,
    ProgramSequenceError,
)
from repro.nand.tlc import (
    TLC_PROGRAM_TIMES,
    TlcPageType,
    TlcScheme,
    tlc_constraint_violations,
    tlc_page_index,
)


class TlcBlock:
    """One TLC erase block (three pages per word line)."""

    def __init__(self, block_id: int, wordlines: int,
                 store_data: bool = False,
                 track_history: bool = True) -> None:
        if wordlines <= 0:
            raise ValueError(f"wordlines must be positive, got {wordlines}")
        self.block_id = block_id
        self.wordlines = wordlines
        self.store_data = store_data
        self.track_history = track_history
        self.erase_count = 0
        self._programmed: List[bool] = [False] * (3 * wordlines)
        self._data: List[Optional[bytes]] = [None] * (3 * wordlines)
        self.program_history: List[int] = []

    @property
    def pages(self) -> int:
        """Total pages in the block (3 per word line)."""
        return 3 * self.wordlines

    def is_programmed(self, wordline: int, ptype: TlcPageType) -> bool:
        """Whether page ``(wordline, ptype)`` holds data."""
        return self._programmed[tlc_page_index(wordline, ptype)]

    def programmed_count(self) -> int:
        """Programmed pages since the last erase."""
        return sum(self._programmed)

    def program(self, wordline: int, ptype: TlcPageType,
                data: Optional[bytes] = None) -> None:
        """Record a page program (legality is the chip's concern)."""
        index = tlc_page_index(wordline, ptype)
        if index >= self.pages:
            raise ValueError(f"wordline {wordline} out of range")
        if self._programmed[index]:
            raise PageStateError(
                f"TLC block {self.block_id} page {index} already "
                f"programmed"
            )
        self._programmed[index] = True
        if self.store_data:
            self._data[index] = data
        if self.track_history:
            self.program_history.append(index)

    def read(self, wordline: int, ptype: TlcPageType) -> Optional[bytes]:
        """Read a page back; unprogrammed pages raise ECC errors."""
        index = tlc_page_index(wordline, ptype)
        if not self._programmed[index]:
            raise EccUncorrectableError(
                f"TLC block {self.block_id} page {index} is erased"
            )
        return self._data[index] if self.store_data else None

    def erase(self) -> None:
        """Erase the block."""
        self._programmed = [False] * self.pages
        self._data = [None] * self.pages
        self.program_history = []
        self.erase_count += 1


class TlcChip:
    """One TLC die enforcing a TLC program-sequence scheme."""

    def __init__(self, chip_id: int, blocks: int,
                 wordlines_per_block: int,
                 scheme: TlcScheme = TlcScheme.RPS,
                 store_data: bool = False,
                 track_history: bool = True) -> None:
        if blocks <= 0:
            raise ValueError(f"blocks must be positive, got {blocks}")
        self.chip_id = chip_id
        self.scheme = scheme
        self.blocks: List[TlcBlock] = [
            TlcBlock(i, wordlines_per_block, store_data=store_data,
                     track_history=track_history)
            for i in range(blocks)
        ]
        self.programs = {ptype: 0 for ptype in TlcPageType}
        self.reads = 0
        self.erases = 0
        self.busy_time = 0.0

    def program(self, block: int, wordline: int, ptype: TlcPageType,
                data: Optional[bytes] = None) -> float:
        """Program one page under the active scheme; returns latency."""
        blk = self.blocks[block]
        violations = tlc_constraint_violations(
            blk.is_programmed, blk.wordlines, wordline, ptype,
            self.scheme,
        )
        if violations:
            raise ProgramSequenceError(
                f"TLC chip {self.chip_id} block {block}: "
                + "; ".join(violations)
            )
        blk.program(wordline, ptype, data)
        self.programs[ptype] += 1
        duration = TLC_PROGRAM_TIMES[ptype]
        self.busy_time += duration
        return duration

    def read(self, block: int, wordline: int,
             ptype: TlcPageType) -> Optional[bytes]:
        """Read one page."""
        data = self.blocks[block].read(wordline, ptype)
        self.reads += 1
        return data

    def erase(self, block: int) -> None:
        """Erase one block."""
        self.blocks[block].erase()
        self.erases += 1

    @property
    def total_programs(self) -> int:
        """Total page programs since creation."""
        return sum(self.programs.values())
