"""NAND operation timing parameters.

Defaults follow the 2X-nm MLC numbers quoted in the paper: an LSB page
programs in 500 us, an MSB page in 2000 us (a 4x asymmetry), a page read
takes 40 us, and a block erase is in the millisecond range.  Channel
transfer time assumes a 400 MB/s toggle-DDR interface moving one 4-KB
page (~10 us).

All times are expressed in **seconds** as floats.
"""

from __future__ import annotations

import dataclasses

from repro.nand.page_types import PageType


@dataclasses.dataclass(frozen=True)
class NandTiming:
    """Operation latencies of one NAND die and its channel.

    Attributes:
        t_lsb_prog: LSB (fast) page program time.
        t_msb_prog: MSB (slow) page program time.
        t_read: page read (array-to-register) time.
        t_erase: block erase time.
        t_transfer: channel transfer time for one page of data.
    """

    t_lsb_prog: float = 500e-6
    t_msb_prog: float = 2000e-6
    t_read: float = 40e-6
    t_erase: float = 5e-3
    t_transfer: float = 10e-6

    def __post_init__(self) -> None:
        for name in ("t_lsb_prog", "t_msb_prog", "t_read", "t_erase",
                     "t_transfer"):
            value = getattr(self, name)
            if value <= 0.0:
                raise ValueError(f"{name} must be positive, got {value}")

    def program_time(self, ptype: PageType) -> float:
        """Array program time for a page of the given type."""
        if ptype is PageType.LSB:
            return self.t_lsb_prog
        return self.t_msb_prog

    def effective_program_time(self, ptype: PageType) -> float:
        """Program time including the channel transfer of the payload."""
        return self.program_time(ptype) + self.t_transfer

    def effective_read_time(self) -> float:
        """Read time including the channel transfer of the payload."""
        return self.t_read + self.t_transfer

    @property
    def asymmetry(self) -> float:
        """MSB-to-LSB program-time ratio (4.0 for the paper's device)."""
        return self.t_msb_prog / self.t_lsb_prog


#: Timing of the paper's 2X-nm MLC device.
PAPER_TIMING = NandTiming()
