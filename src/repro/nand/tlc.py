"""TLC (3-bit) generalisation of the program-sequence machinery.

The paper states (Section 1) that RPS "can be applicable for other
NAND devices such as triple-level cell (TLC) NAND devices with a
similar program scheme".  This module works that claim out: a TLC word
line holds three pages — LSB (fast), CSB (centre) and MSB (slow) — and
the representative staggered TLC program order

    LSB(0), LSB(1), CSB(0), LSB(2), CSB(1), MSB(0),
    LSB(3), CSB(2), MSB(1), ...

generalises the Figure 2(b) interleave: once MSB(k) is written, only
MSB(k+1) can still disturb word line k.  Formalised as constraints:

* **type order** — pages of the same type are written in word-line
  order (three constraints, one per type);
* **pairing** — LSB(k) before CSB(k) before MSB(k);
* **shielding** — before CSB(k), LSB(k+1) must be written; before
  MSB(k), CSB(k+1) must be written (each program level shields the
  neighbour one level below);
* **over-specification** (the TLC analogue of Constraint 4, dropped by
  RPS-TLC) — before LSB(k): CSB(k-2) and MSB(k-3); before CSB(k):
  MSB(k-2).

Exactly as in the MLC case, any RPS-TLC-legal order leaves at most one
aggressor program (MSB(k+1)) after a word line's data is final — the
over-specified constraints buy nothing.
"""

from __future__ import annotations

import enum
import random
from typing import Callable, List, Optional, Sequence, Tuple


class TlcPageType(enum.IntEnum):
    """The three logical page types of a 3-bit TLC word line."""

    LSB = 0
    CSB = 1
    MSB = 2

    @property
    def is_fast(self) -> bool:
        """True for the fast (LSB) page type."""
        return self is TlcPageType.LSB


#: Representative TLC program latencies (LSB/CSB/MSB), seconds.
TLC_PROGRAM_TIMES = {
    TlcPageType.LSB: 500e-6,
    TlcPageType.CSB: 2000e-6,
    TlcPageType.MSB: 5500e-6,
}


def tlc_page_index(wordline: int, ptype: TlcPageType) -> int:
    """Canonical flat index of TLC page ``(wordline, ptype)``."""
    if wordline < 0:
        raise ValueError(f"wordline must be non-negative, got {wordline}")
    return 3 * wordline + int(ptype)


def tlc_split_index(index: int) -> Tuple[int, TlcPageType]:
    """Inverse of :func:`tlc_page_index`."""
    if index < 0:
        raise ValueError(f"page index must be non-negative, got {index}")
    return index // 3, TlcPageType(index % 3)


class TlcScheme(enum.Enum):
    """TLC program-sequence constraint sets."""

    FPS = "fps"  # type order + pairing + shielding + over-specification
    RPS = "rps"  # type order + pairing + shielding
    NONE = "none"


def tlc_constraint_violations(
    is_programmed: Callable[[int, TlcPageType], bool],
    wordlines: int,
    wordline: int,
    ptype: TlcPageType,
    scheme: TlcScheme,
) -> List[str]:
    """Check whether programming ``(wordline, ptype)`` next is legal."""
    if not (0 <= wordline < wordlines):
        raise ValueError(f"wordline {wordline} out of range")
    violations: List[str] = []
    if scheme is TlcScheme.NONE:
        return violations
    # pairing: the lower pages of the same word line must exist
    for lower in TlcPageType:
        if lower < ptype and not is_programmed(wordline, lower):
            violations.append(
                f"pairing: {lower.name}({wordline}) before "
                f"{ptype.name}({wordline})"
            )
    # type order
    if wordline >= 1 and not is_programmed(wordline - 1, ptype):
        violations.append(
            f"type order: {ptype.name}({wordline - 1}) before "
            f"{ptype.name}({wordline})"
        )
    # shielding
    if ptype is TlcPageType.CSB and wordline + 1 < wordlines \
            and not is_programmed(wordline + 1, TlcPageType.LSB):
        violations.append(
            f"shielding: LSB({wordline + 1}) before CSB({wordline})"
        )
    if ptype is TlcPageType.MSB and wordline + 1 < wordlines \
            and not is_programmed(wordline + 1, TlcPageType.CSB):
        violations.append(
            f"shielding: CSB({wordline + 1}) before MSB({wordline})"
        )
    if scheme is not TlcScheme.FPS:
        return violations
    # over-specification (dropped by RPS-TLC)
    if ptype is TlcPageType.LSB:
        if wordline >= 2 and not is_programmed(wordline - 2,
                                               TlcPageType.CSB):
            violations.append(
                f"over-spec: CSB({wordline - 2}) before LSB({wordline})"
            )
        if wordline >= 3 and not is_programmed(wordline - 3,
                                               TlcPageType.MSB):
            violations.append(
                f"over-spec: MSB({wordline - 3}) before LSB({wordline})"
            )
    if ptype is TlcPageType.CSB and wordline >= 2 \
            and not is_programmed(wordline - 2, TlcPageType.MSB):
        violations.append(
            f"over-spec: MSB({wordline - 2}) before CSB({wordline})"
        )
    return violations


# ----------------------------------------------------------------------
# order generators

def fps_tlc_order(wordlines: int) -> List[int]:
    """The representative staggered TLC order (three-deep interleave)."""
    _check(wordlines)
    order: List[int] = []
    # Cycle c writes LSB(c), CSB(c-1), MSB(c-2) where those exist; two
    # trailing cycles flush the remaining CSB/MSB pages.
    for cycle in range(wordlines + 2):
        if cycle < wordlines:
            order.append(tlc_page_index(cycle, TlcPageType.LSB))
        if 0 <= cycle - 1 < wordlines:
            order.append(tlc_page_index(cycle - 1, TlcPageType.CSB))
        if 0 <= cycle - 2 < wordlines:
            order.append(tlc_page_index(cycle - 2, TlcPageType.MSB))
    return order


def rps_tlc_full_order(wordlines: int) -> List[int]:
    """Three-phase order: all LSB, then all CSB, then all MSB pages.

    The TLC analogue of the 2PO/RPSfull order: a block serves fast
    LSB-only writes first, then progressively slower phases.
    """
    _check(wordlines)
    order: List[int] = []
    for ptype in TlcPageType:
        order.extend(tlc_page_index(w, ptype) for w in range(wordlines))
    return order


def random_rps_tlc_order(wordlines: int,
                         rng: Optional[random.Random] = None
                         ) -> List[int]:
    """A uniformly random stepwise-legal RPS-TLC order."""
    _check(wordlines)
    rng = rng or random.Random()
    next_page = {ptype: 0 for ptype in TlcPageType}
    order: List[int] = []
    total = 3 * wordlines
    while len(order) < total:
        candidates: List[TlcPageType] = []
        if next_page[TlcPageType.LSB] < wordlines:
            candidates.append(TlcPageType.LSB)
        csb = next_page[TlcPageType.CSB]
        if csb < wordlines and next_page[TlcPageType.LSB] >= min(
                wordlines, csb + 2):
            candidates.append(TlcPageType.CSB)
        msb = next_page[TlcPageType.MSB]
        if msb < wordlines and next_page[TlcPageType.CSB] >= min(
                wordlines, msb + 2):
            candidates.append(TlcPageType.MSB)
        choice = rng.choice(candidates)
        order.append(tlc_page_index(next_page[choice], choice))
        next_page[choice] += 1
    return order


def unconstrained_tlc_order(wordlines: int,
                            rng: Optional[random.Random] = None
                            ) -> List[int]:
    """A random order with no constraints (worst-case interference)."""
    _check(wordlines)
    rng = rng or random.Random()
    order = list(range(3 * wordlines))
    rng.shuffle(order)
    return order


def validate_tlc_order(order: Sequence[int], wordlines: int,
                       scheme: TlcScheme) -> List[str]:
    """Replay an order against a TLC scheme; return all violations."""
    _check(wordlines)
    violations: List[str] = []
    expected = 3 * wordlines
    if len(order) != expected:
        violations.append(
            f"order has {len(order)} entries, expected {expected}"
        )
    programmed = set()
    for position, index in enumerate(order):
        if not (0 <= index < expected):
            violations.append(
                f"position {position}: page {index} out of range"
            )
            continue
        if index in programmed:
            violations.append(
                f"position {position}: page {index} programmed twice"
            )
            continue
        wordline, ptype = tlc_split_index(index)
        violations.extend(
            f"position {position}: {message}"
            for message in tlc_constraint_violations(
                lambda w, t: tlc_page_index(w, t) in programmed,
                wordlines, wordline, ptype, scheme,
            )
        )
        programmed.add(index)
    return violations


def is_valid_tlc_order(order: Sequence[int], wordlines: int,
                       scheme: TlcScheme) -> bool:
    """True when ``order`` is complete and legal under ``scheme``."""
    return not validate_tlc_order(order, wordlines, scheme)


# ----------------------------------------------------------------------
# interference analysis

def tlc_aggressor_counts(order: Sequence[int],
                         wordlines: int) -> List[int]:
    """Aggressor programs per word line after its MSB page is written.

    The generalisation of the MLC analysis: word line k's data is
    final once MSB(k) is programmed; every later program to WL(k-1) or
    WL(k+1) — any of their three pages — is an aggressor.
    """
    positions = {index: pos for pos, index in enumerate(order)}
    counts: List[int] = []
    for victim in range(wordlines):
        msb_pos = positions.get(tlc_page_index(victim, TlcPageType.MSB))
        if msb_pos is None:
            counts.append(0)
            continue
        count = 0
        for neighbour in (victim - 1, victim + 1):
            if not (0 <= neighbour < wordlines):
                continue
            for ptype in TlcPageType:
                pos = positions.get(tlc_page_index(neighbour, ptype))
                if pos is not None and pos > msb_pos:
                    count += 1
        counts.append(count)
    return counts


def tlc_max_aggressors(order: Sequence[int], wordlines: int) -> int:
    """Worst per-word-line aggressor count of a TLC order."""
    counts = tlc_aggressor_counts(order, wordlines)
    return max(counts) if counts else 0


def _check(wordlines: int) -> None:
    if wordlines <= 0:
        raise ValueError(f"wordlines must be positive, got {wordlines}")
