"""Sudden power-off (SPO) fault injection.

An MSB-page program is destructive: while the controller rearranges the
LSB-programmed Vth states into the four final states, the stored LSB
data is temporarily unrecoverable.  A power loss in that window loses
the paired LSB page (Section 1 of the paper).  This module models that
failure so the per-block parity backup and recovery procedures of
flexFTL (Section 3.3) can be exercised end to end.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List

from repro.nand.array import NandArray
from repro.nand.block import PageState
from repro.nand.errors import PageStateError
from repro.nand.geometry import PhysicalPageAddress
from repro.nand.page_types import PageType, page_index, split_index


def simulate_power_loss_during_msb(
    array: NandArray, addr: PhysicalPageAddress
) -> PhysicalPageAddress:
    """Model a power loss while the MSB page at ``addr`` was programming.

    The MSB page itself stays unprogrammed (its data never committed),
    and the paired LSB page of the same word line — which must already
    be programmed per Constraint 3's world — has its data destroyed.

    Returns:
        The physical address of the destroyed LSB page.

    Raises:
        PageStateError: ``addr`` is not an MSB page, the MSB page was
            already programmed (no in-flight program to interrupt), or
            the paired LSB page holds no data to destroy.
    """
    wordline, ptype = split_index(addr.page)
    if ptype is not PageType.MSB:
        raise PageStateError(
            f"power loss during MSB program requires an MSB page, got "
            f"page {addr.page} (LSB)"
        )
    chip = array.chip_at(addr)
    block = chip.blocks[addr.block]
    if block.page_state(addr.page) is not PageState.ERASED:
        raise PageStateError(
            f"MSB page {addr.page} already committed; nothing in flight"
        )
    if not block.is_programmed(wordline, PageType.LSB):
        raise PageStateError(
            f"paired LSB of wordline {wordline} is not programmed"
        )
    block.destroy_page(wordline, PageType.LSB)
    return PhysicalPageAddress(
        addr.channel, addr.chip, addr.block, page_index(wordline, PageType.LSB)
    )


def apply_power_loss_to_in_flight(
    array: NandArray, addr: PhysicalPageAddress
) -> List[PhysicalPageAddress]:
    """Power loss against a program the simulator already committed.

    The discrete-event controller mutates device state when an
    operation *issues* and models its latency afterwards, so a program
    in flight at power-off time is already marked programmed.  This
    helper applies the physical outcome on top of that convention: the
    in-flight page's own data never became durable (destroyed), and if
    it was an MSB program its paired LSB page is destroyed too.

    Returns the addresses whose data was lost.
    """
    wordline, ptype = split_index(addr.page)
    block = array.chip_at(addr).blocks[addr.block]
    destroyed: List[PhysicalPageAddress] = []
    if block.page_state(addr.page) is PageState.PROGRAMMED:
        block.destroy_page(wordline, ptype)
        destroyed.append(addr)
    if ptype is PageType.MSB and block.is_programmed(wordline,
                                                     PageType.LSB):
        block.destroy_page(wordline, PageType.LSB)
        destroyed.append(PhysicalPageAddress(
            addr.channel, addr.chip, addr.block,
            page_index(wordline, PageType.LSB),
        ))
    return destroyed


@dataclasses.dataclass(frozen=True)
class InFlightProgram:
    """A program operation in progress at the moment of power loss."""

    addr: PhysicalPageAddress
    ptype: PageType


class PowerLossInjector:
    """Apply a sudden power-off to a set of in-flight program operations.

    The discrete-event controller reports which program operations were
    active when the power failed; the injector applies the device-level
    consequences: an interrupted LSB program simply never commits, while
    an interrupted MSB program additionally destroys its paired LSB
    page.
    """

    def __init__(self, array: NandArray) -> None:
        self.array = array
        self.destroyed: List[PhysicalPageAddress] = []

    def fire(self, in_flight: Iterable[InFlightProgram]
             ) -> List[PhysicalPageAddress]:
        """Apply the power loss; returns addresses of destroyed LSB pages."""
        destroyed: List[PhysicalPageAddress] = []
        for op in in_flight:
            if op.ptype is PageType.MSB:
                destroyed.append(
                    simulate_power_loss_during_msb(self.array, op.addr)
                )
        self.destroyed.extend(destroyed)
        return destroyed
