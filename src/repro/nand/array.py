"""Multi-channel NAND array: the full storage device.

:class:`NandArray` instantiates one :class:`~repro.nand.chip.Chip` per
die of the configured geometry and routes physically-addressed
operations to the owning die.  It is purely a state/accounting model;
time is handled by the discrete-event simulation layer
(:mod:`repro.sim`), which uses the latencies the operations return.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.nand.block import ERASED_CODE, PROGRAMMED_CODE
from repro.nand.chip import Chip
from repro.nand.geometry import NandGeometry, PhysicalPageAddress
from repro.nand.page_types import PageType, split_index
from repro.nand.sequence import SequenceScheme
from repro.nand.timing import NandTiming

try:  # optional: the vectorized program_batch path needs it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

_PTYPES = (PageType.LSB, PageType.MSB)


class NandArray:
    """A complete NAND device (channels x chips x blocks x pages)."""

    def __init__(
        self,
        geometry: Optional[NandGeometry] = None,
        timing: Optional[NandTiming] = None,
        scheme: SequenceScheme = SequenceScheme.RPS,
        store_data: bool = False,
        track_history: bool = True,
    ) -> None:
        self.geometry = geometry or NandGeometry()
        self.timing = timing or NandTiming()
        self.scheme = scheme
        self.store_data = store_data
        self.track_history = track_history
        # geometry bounds cached as plain ints for the per-op inlined
        # address validation below
        g = self.geometry
        self._channels = g.channels
        self._cpc = g.chips_per_channel
        self._bpc = g.blocks_per_chip
        self._ppb = g.pages_per_block
        #: scheme identity as plain booleans for the vectorized
        #: legality check (mirrors Chip._unconstrained / Chip._fps)
        self._seq_unconstrained = scheme is SequenceScheme.NONE
        self._seq_fps = scheme is SequenceScheme.FPS
        #: device-wide flat page-state buffer (see unify_state_store);
        #: None until adopted — the default per-block bytearrays stay
        #: untouched for event-at-a-time runs
        self._state_store: Optional[bytearray] = None
        self._np_states = None
        self.chips: List[Chip] = [
            Chip(
                chip_id,
                self.geometry.blocks_per_chip,
                self.geometry.wordlines_per_block,
                timing=self.timing,
                scheme=scheme,
                store_data=store_data,
                track_history=track_history,
            )
            for chip_id in self.geometry.iter_chip_ids()
        ]

    # ------------------------------------------------------------------
    # addressing helpers

    def chip_at(self, addr: PhysicalPageAddress) -> Chip:
        """The chip owning ``addr``."""
        self.geometry.validate(addr)
        return self.chips[self.geometry.chip_id(addr.channel, addr.chip)]

    def is_programmed(self, addr: PhysicalPageAddress) -> bool:
        """Whether the page at ``addr`` currently holds programmed data."""
        channel, chip, block, page = addr
        if not (0 <= channel < self._channels and 0 <= chip < self._cpc
                and 0 <= block < self._bpc and 0 <= page < self._ppb):
            self.geometry.validate(addr)  # raises with the precise field
        blk = self.chips[channel * self._cpc + chip].blocks[block]
        return blk._states[page] == PROGRAMMED_CODE

    # ------------------------------------------------------------------
    # operations

    def program(self, addr: PhysicalPageAddress,
                data: Optional[bytes] = None) -> float:
        """Program the page at ``addr``; returns the array latency."""
        # Inlined chip_at + split_index + geometry.validate + the body
        # of Chip.program: this and ``read`` run once per simulated
        # flash op and the call layers were measurable.  The slow paths
        # delegate so errors carry the exact Chip/Block messages; keep
        # in sync with :meth:`repro.nand.chip.Chip.program`.
        channel, chip, block, page = addr
        if not (0 <= channel < self._channels and 0 <= chip < self._cpc
                and 0 <= block < self._bpc and 0 <= page < self._ppb):
            self.geometry.validate(addr)
        c = self.chips[channel * self._cpc + chip]
        blk = c.blocks[block]
        states = blk._states
        half = page & 1
        if half:  # MSB
            legal = c._unconstrained or (
                states[page - 1] == PROGRAMMED_CODE
                and (page < 2 or states[page - 2] == PROGRAMMED_CODE)
                and (page + 1 >= 2 * blk.wordlines
                     or states[page + 1] == PROGRAMMED_CODE))
        else:  # LSB
            legal = c._unconstrained or (
                (page == 0 or states[page - 2] == PROGRAMMED_CODE)
                and (not c._fps or page < 4
                     or states[page - 3] == PROGRAMMED_CODE))
        if not legal or states[page] != ERASED_CODE:
            return c.program(block, page >> 1, _PTYPES[half], data)
        states[page] = PROGRAMMED_CODE
        blk._used += 1
        if blk._data is not None:
            blk._data[page] = data
        if blk.track_history:
            blk.program_history.append(page)
        if half:
            c.msb_programs += 1
        else:
            c.lsb_programs += 1
        duration = c._prog_times[half]
        c.busy_time += duration
        return duration

    def unify_state_store(self) -> bool:
        """Re-back every block's page states with one flat device-wide
        buffer.

        Each :class:`Block`'s ``_states`` becomes a memoryview slice of
        a single ``bytearray`` (block erase then zeroes in place, so
        views stay valid), and a numpy view over the same buffer powers
        the vectorized :meth:`program_batch` path.  Idempotent; returns
        False (leaving the layout unchanged) when numpy is unavailable.
        """
        if _np is None:
            return False
        if self._np_states is not None:
            return True
        ppb = self._ppb
        store = bytearray(len(self.chips) * self._bpc * ppb)
        view = memoryview(store)
        offset = 0
        for chip in self.chips:
            for blk in chip.blocks:
                state_slice = view[offset:offset + ppb]
                state_slice[:] = blk._states
                blk._states = state_slice
                offset += ppb
        self._state_store = store
        self._np_states = _np.frombuffer(store, dtype=_np.uint8)
        return True

    def program_batch(self, addrs: Sequence[PhysicalPageAddress],
                      datas: Optional[Sequence[Optional[bytes]]] = None
                      ) -> List[float]:
        """Program many pages; returns their latencies in order.

        Semantically ``[self.program(a, d) for a, d in zip(addrs,
        datas)]``.  When the unified state store is adopted
        (:meth:`unify_state_store`) and every address targets a
        distinct chip, the legality/erased checks and state writes run
        vectorized over the flat buffer; any anomaly (shared chip,
        out-of-range address, non-erased or illegal target) falls back
        to the sequential loop, which raises the exact per-op errors.
        """
        if datas is None:
            datas = (None,) * len(addrs)
        np_states = self._np_states
        if np_states is not None and len(addrs) >= 2:
            latencies = self._program_batch_vector(addrs, datas,
                                                   np_states)
            if latencies is not None:
                return latencies
        program = self.program
        return [program(addr, data)
                for addr, data in zip(addrs, datas)]

    def _program_batch_vector(self, addrs, datas, states):
        """Vector attempt for :meth:`program_batch`.

        Returns the latency list, or None when the batch cannot be
        proven safe vectorized (the caller then falls back to the
        sequential path).
        """
        addr_mat = _np.asarray(addrs, dtype=_np.intp)
        if addr_mat.ndim != 2 or addr_mat.shape[1] != 4:
            return None
        channel = addr_mat[:, 0]
        chip = addr_mat[:, 1]
        block = addr_mat[:, 2]
        page = addr_mat[:, 3]
        cpc = self._cpc
        bpc = self._bpc
        ppb = self._ppb
        if (channel.min() < 0 or channel.max() >= self._channels
                or chip.min() < 0 or chip.max() >= cpc
                or block.min() < 0 or block.max() >= bpc
                or page.min() < 0 or page.max() >= ppb):
            return None
        chip_index = channel * cpc + chip
        if _np.unique(chip_index).shape[0] != addr_mat.shape[0]:
            # Two ops on one chip could depend on each other's writes;
            # only the sequential loop models that.
            return None
        flat = (chip_index * bpc + block) * ppb + page
        if states[flat].any():
            return None  # a target is not erased
        if not self._seq_unconstrained:
            prog = _np.uint8(PROGRAMMED_CODE)
            top = states.shape[0] - 1

            def code_at(index):
                # Gather with clipped indices: clipped lanes are always
                # masked out by the accompanying page-position test.
                return states[_np.clip(index, 0, top)]

            msb = (page & 1).astype(bool)
            lsb = ~msb
            legal = _np.ones(len(addrs), dtype=bool)
            flat_lsb = flat[lsb]
            page_lsb = page[lsb]
            legal[lsb] = (page_lsb == 0) | (code_at(flat_lsb - 2) == prog)
            if self._seq_fps:
                legal[lsb] &= ((page_lsb < 4)
                               | (code_at(flat_lsb - 3) == prog))
            flat_msb = flat[msb]
            page_msb = page[msb]
            legal[msb] = (
                (code_at(flat_msb - 1) == prog)
                & ((page_msb < 2) | (code_at(flat_msb - 2) == prog))
                & ((page_msb + 1 >= ppb)
                   | (code_at(flat_msb + 1) == prog)))
            if not legal.all():
                return None
        states[flat] = PROGRAMMED_CODE
        # Per-op bookkeeping stays in python: one op per chip keeps
        # this loop short, and it must mirror ``program`` exactly.
        chips = self.chips
        latencies = []
        append = latencies.append
        for i in range(len(addrs)):
            c = chips[chip_index[i]]
            blk = c.blocks[block[i]]
            index = int(page[i])
            blk._used += 1
            if blk._data is not None:
                blk._data[index] = datas[i]
            if blk.track_history:
                blk.program_history.append(index)
            half = index & 1
            if half:
                c.msb_programs += 1
            else:
                c.lsb_programs += 1
            duration = c._prog_times[half]
            c.busy_time += duration
            append(duration)
        return latencies

    def read(self, addr: PhysicalPageAddress) -> "tuple[Optional[bytes], float]":
        """Read the page at ``addr``; returns ``(payload, latency)``."""
        channel, chip, block, page = addr
        if not (0 <= channel < self._channels and 0 <= chip < self._cpc
                and 0 <= block < self._bpc and 0 <= page < self._ppb):
            self.geometry.validate(addr)
        c = self.chips[channel * self._cpc + chip]
        # Chip.read, inlined; the error path delegates so reads of
        # erased/destroyed pages raise Block's exact ECC error.
        blk = c.blocks[block]
        if blk._states[page] != PROGRAMMED_CODE:
            return c.read(block, page >> 1, _PTYPES[page & 1])
        data = blk._data[page] if blk._data is not None else None
        c.reads += 1
        duration = c.timing.t_read
        c.busy_time += duration
        return data, duration

    def erase(self, channel: int, chip: int, block: int) -> float:
        """Erase a block; returns the erase latency."""
        addr = PhysicalPageAddress(channel, chip, block, 0)
        return self.chip_at(addr).erase(block)

    # ------------------------------------------------------------------
    # aggregate accounting

    @property
    def total_erases(self) -> int:
        """Total block erasures across all dies."""
        return sum(chip.erases for chip in self.chips)

    @property
    def total_programs(self) -> int:
        """Total page programs across all dies."""
        return sum(chip.total_programs for chip in self.chips)

    @property
    def lsb_programs(self) -> int:
        """Total LSB-page programs across all dies."""
        return sum(chip.lsb_programs for chip in self.chips)

    @property
    def msb_programs(self) -> int:
        """Total MSB-page programs across all dies."""
        return sum(chip.msb_programs for chip in self.chips)

    @property
    def total_reads(self) -> int:
        """Total page reads across all dies."""
        return sum(chip.reads for chip in self.chips)

    # ------------------------------------------------------------------
    # snapshot support

    def __getstate__(self) -> dict:
        """Pickle support for the unified state store.

        The flat buffer and its numpy view alias every block's
        ``_states`` memoryview; pickle cannot preserve buffer aliasing
        (numpy arrays deep-copy), so drop both and record only that
        unification was on.  Blocks flatten their own views to
        bytearrays (:meth:`repro.nand.block.Block.__getstate__`), and
        ``__setstate__`` re-unifies from those — same layout, same
        contents.
        """
        state = self.__dict__.copy()
        state["_np_states"] = None
        state["_state_store"] = None
        state["_was_unified"] = self._np_states is not None
        return state

    def __setstate__(self, state: dict) -> None:
        was_unified = state.pop("_was_unified", False)
        self.__dict__.update(state)
        if was_unified:
            self.unify_state_store()

    def page_type_of(self, addr: PhysicalPageAddress) -> PageType:
        """Page type (LSB/MSB) of the page at ``addr``."""
        return split_index(addr.page)[1]

    def __repr__(self) -> str:
        g = self.geometry
        return (
            f"NandArray({g.channels}ch x {g.chips_per_channel}chips, "
            f"{g.blocks_per_chip} blocks, scheme={self.scheme.value})"
        )
