"""Multi-channel NAND array: the full storage device.

:class:`NandArray` instantiates one :class:`~repro.nand.chip.Chip` per
die of the configured geometry and routes physically-addressed
operations to the owning die.  It is purely a state/accounting model;
time is handled by the discrete-event simulation layer
(:mod:`repro.sim`), which uses the latencies the operations return.
"""

from __future__ import annotations

from typing import List, Optional

from repro.nand.block import ERASED_CODE, PROGRAMMED_CODE
from repro.nand.chip import Chip
from repro.nand.geometry import NandGeometry, PhysicalPageAddress
from repro.nand.page_types import PageType, split_index
from repro.nand.sequence import SequenceScheme
from repro.nand.timing import NandTiming

_PTYPES = (PageType.LSB, PageType.MSB)


class NandArray:
    """A complete NAND device (channels x chips x blocks x pages)."""

    def __init__(
        self,
        geometry: Optional[NandGeometry] = None,
        timing: Optional[NandTiming] = None,
        scheme: SequenceScheme = SequenceScheme.RPS,
        store_data: bool = False,
        track_history: bool = True,
    ) -> None:
        self.geometry = geometry or NandGeometry()
        self.timing = timing or NandTiming()
        self.scheme = scheme
        self.store_data = store_data
        self.track_history = track_history
        # geometry bounds cached as plain ints for the per-op inlined
        # address validation below
        g = self.geometry
        self._channels = g.channels
        self._cpc = g.chips_per_channel
        self._bpc = g.blocks_per_chip
        self._ppb = g.pages_per_block
        self.chips: List[Chip] = [
            Chip(
                chip_id,
                self.geometry.blocks_per_chip,
                self.geometry.wordlines_per_block,
                timing=self.timing,
                scheme=scheme,
                store_data=store_data,
                track_history=track_history,
            )
            for chip_id in self.geometry.iter_chip_ids()
        ]

    # ------------------------------------------------------------------
    # addressing helpers

    def chip_at(self, addr: PhysicalPageAddress) -> Chip:
        """The chip owning ``addr``."""
        self.geometry.validate(addr)
        return self.chips[self.geometry.chip_id(addr.channel, addr.chip)]

    def is_programmed(self, addr: PhysicalPageAddress) -> bool:
        """Whether the page at ``addr`` currently holds programmed data."""
        channel, chip, block, page = addr
        if not (0 <= channel < self._channels and 0 <= chip < self._cpc
                and 0 <= block < self._bpc and 0 <= page < self._ppb):
            self.geometry.validate(addr)  # raises with the precise field
        blk = self.chips[channel * self._cpc + chip].blocks[block]
        return blk._states[page] == PROGRAMMED_CODE

    # ------------------------------------------------------------------
    # operations

    def program(self, addr: PhysicalPageAddress,
                data: Optional[bytes] = None) -> float:
        """Program the page at ``addr``; returns the array latency."""
        # Inlined chip_at + split_index + geometry.validate + the body
        # of Chip.program: this and ``read`` run once per simulated
        # flash op and the call layers were measurable.  The slow paths
        # delegate so errors carry the exact Chip/Block messages; keep
        # in sync with :meth:`repro.nand.chip.Chip.program`.
        channel, chip, block, page = addr
        if not (0 <= channel < self._channels and 0 <= chip < self._cpc
                and 0 <= block < self._bpc and 0 <= page < self._ppb):
            self.geometry.validate(addr)
        c = self.chips[channel * self._cpc + chip]
        blk = c.blocks[block]
        states = blk._states
        half = page & 1
        if half:  # MSB
            legal = c._unconstrained or (
                states[page - 1] == PROGRAMMED_CODE
                and (page < 2 or states[page - 2] == PROGRAMMED_CODE)
                and (page + 1 >= 2 * blk.wordlines
                     or states[page + 1] == PROGRAMMED_CODE))
        else:  # LSB
            legal = c._unconstrained or (
                (page == 0 or states[page - 2] == PROGRAMMED_CODE)
                and (not c._fps or page < 4
                     or states[page - 3] == PROGRAMMED_CODE))
        if not legal or states[page] != ERASED_CODE:
            return c.program(block, page >> 1, _PTYPES[half], data)
        states[page] = PROGRAMMED_CODE
        blk._used += 1
        if blk._data is not None:
            blk._data[page] = data
        if blk.track_history:
            blk.program_history.append(page)
        if half:
            c.msb_programs += 1
        else:
            c.lsb_programs += 1
        duration = c._prog_times[half]
        c.busy_time += duration
        return duration

    def read(self, addr: PhysicalPageAddress) -> "tuple[Optional[bytes], float]":
        """Read the page at ``addr``; returns ``(payload, latency)``."""
        channel, chip, block, page = addr
        if not (0 <= channel < self._channels and 0 <= chip < self._cpc
                and 0 <= block < self._bpc and 0 <= page < self._ppb):
            self.geometry.validate(addr)
        c = self.chips[channel * self._cpc + chip]
        # Chip.read, inlined; the error path delegates so reads of
        # erased/destroyed pages raise Block's exact ECC error.
        blk = c.blocks[block]
        if blk._states[page] != PROGRAMMED_CODE:
            return c.read(block, page >> 1, _PTYPES[page & 1])
        data = blk._data[page] if blk._data is not None else None
        c.reads += 1
        duration = c.timing.t_read
        c.busy_time += duration
        return data, duration

    def erase(self, channel: int, chip: int, block: int) -> float:
        """Erase a block; returns the erase latency."""
        addr = PhysicalPageAddress(channel, chip, block, 0)
        return self.chip_at(addr).erase(block)

    # ------------------------------------------------------------------
    # aggregate accounting

    @property
    def total_erases(self) -> int:
        """Total block erasures across all dies."""
        return sum(chip.erases for chip in self.chips)

    @property
    def total_programs(self) -> int:
        """Total page programs across all dies."""
        return sum(chip.total_programs for chip in self.chips)

    @property
    def lsb_programs(self) -> int:
        """Total LSB-page programs across all dies."""
        return sum(chip.lsb_programs for chip in self.chips)

    @property
    def msb_programs(self) -> int:
        """Total MSB-page programs across all dies."""
        return sum(chip.msb_programs for chip in self.chips)

    @property
    def total_reads(self) -> int:
        """Total page reads across all dies."""
        return sum(chip.reads for chip in self.chips)

    def page_type_of(self, addr: PhysicalPageAddress) -> PageType:
        """Page type (LSB/MSB) of the page at ``addr``."""
        return split_index(addr.page)[1]

    def __repr__(self) -> str:
        g = self.geometry
        return (
            f"NandArray({g.channels}ch x {g.chips_per_channel}chips, "
            f"{g.blocks_per_chip} blocks, scheme={self.scheme.value})"
        )
