"""Multi-channel NAND array: the full storage device.

:class:`NandArray` instantiates one :class:`~repro.nand.chip.Chip` per
die of the configured geometry and routes physically-addressed
operations to the owning die.  It is purely a state/accounting model;
time is handled by the discrete-event simulation layer
(:mod:`repro.sim`), which uses the latencies the operations return.
"""

from __future__ import annotations

from typing import List, Optional

from repro.nand.chip import Chip
from repro.nand.geometry import NandGeometry, PhysicalPageAddress
from repro.nand.page_types import PageType, split_index
from repro.nand.sequence import SequenceScheme
from repro.nand.timing import NandTiming


class NandArray:
    """A complete NAND device (channels x chips x blocks x pages)."""

    def __init__(
        self,
        geometry: Optional[NandGeometry] = None,
        timing: Optional[NandTiming] = None,
        scheme: SequenceScheme = SequenceScheme.RPS,
        store_data: bool = False,
    ) -> None:
        self.geometry = geometry or NandGeometry()
        self.timing = timing or NandTiming()
        self.scheme = scheme
        self.store_data = store_data
        self.chips: List[Chip] = [
            Chip(
                chip_id,
                self.geometry.blocks_per_chip,
                self.geometry.wordlines_per_block,
                timing=self.timing,
                scheme=scheme,
                store_data=store_data,
            )
            for chip_id in self.geometry.iter_chip_ids()
        ]

    # ------------------------------------------------------------------
    # addressing helpers

    def chip_at(self, addr: PhysicalPageAddress) -> Chip:
        """The chip owning ``addr``."""
        self.geometry.validate(addr)
        return self.chips[self.geometry.chip_id(addr.channel, addr.chip)]

    def is_programmed(self, addr: PhysicalPageAddress) -> bool:
        """Whether the page at ``addr`` currently holds programmed data."""
        wordline, ptype = split_index(addr.page)
        return self.chip_at(addr).blocks[addr.block].is_programmed(
            wordline, ptype
        )

    # ------------------------------------------------------------------
    # operations

    def program(self, addr: PhysicalPageAddress,
                data: Optional[bytes] = None) -> float:
        """Program the page at ``addr``; returns the array latency."""
        wordline, ptype = split_index(addr.page)
        return self.chip_at(addr).program(addr.block, wordline, ptype, data)

    def read(self, addr: PhysicalPageAddress) -> "tuple[Optional[bytes], float]":
        """Read the page at ``addr``; returns ``(payload, latency)``."""
        wordline, ptype = split_index(addr.page)
        return self.chip_at(addr).read(addr.block, wordline, ptype)

    def erase(self, channel: int, chip: int, block: int) -> float:
        """Erase a block; returns the erase latency."""
        addr = PhysicalPageAddress(channel, chip, block, 0)
        return self.chip_at(addr).erase(block)

    # ------------------------------------------------------------------
    # aggregate accounting

    @property
    def total_erases(self) -> int:
        """Total block erasures across all dies."""
        return sum(chip.erases for chip in self.chips)

    @property
    def total_programs(self) -> int:
        """Total page programs across all dies."""
        return sum(chip.total_programs for chip in self.chips)

    @property
    def lsb_programs(self) -> int:
        """Total LSB-page programs across all dies."""
        return sum(chip.lsb_programs for chip in self.chips)

    @property
    def msb_programs(self) -> int:
        """Total MSB-page programs across all dies."""
        return sum(chip.msb_programs for chip in self.chips)

    @property
    def total_reads(self) -> int:
        """Total page reads across all dies."""
        return sum(chip.reads for chip in self.chips)

    def page_type_of(self, addr: PhysicalPageAddress) -> PageType:
        """Page type (LSB/MSB) of the page at ``addr``."""
        return split_index(addr.page)[1]

    def __repr__(self) -> str:
        g = self.geometry
        return (
            f"NandArray({g.channels}ch x {g.chips_per_channel}chips, "
            f"{g.blocks_per_chip} blocks, scheme={self.scheme.value})"
        )
