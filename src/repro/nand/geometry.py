"""NAND device geometry and physical addressing.

The paper's evaluation platform is a 16 GB slice of a BlueDBM board:
8 channels, 4 chips per channel, 512 blocks per chip and 256 4-KB pages
per block (i.e. 128 word lines of 2-bit MLC).  :data:`PAPER_GEOMETRY`
captures those numbers; scaled-down geometries are used for fast tests.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterator, NamedTuple

from repro.nand.errors import AddressError


class PhysicalPageAddress(NamedTuple):
    """Fully-qualified physical page address.

    ``page`` is the canonical in-block page index (see
    :func:`repro.nand.page_types.page_index`).
    """

    channel: int
    chip: int
    block: int
    page: int


@dataclasses.dataclass(frozen=True)
class NandGeometry:
    """Immutable description of a NAND storage device's shape.

    Attributes:
        channels: number of independent channels.
        chips_per_channel: NAND dies attached to each channel.
        blocks_per_chip: erase blocks per die.
        pages_per_block: pages per block; must be even (LSB+MSB pairs).
        page_size: page payload size in bytes.
    """

    channels: int = 8
    chips_per_channel: int = 4
    blocks_per_chip: int = 512
    pages_per_block: int = 256
    page_size: int = 4096

    #: pages sharing one word line (2 for MLC; TLC subclasses override).
    #: A plain class attribute, not a dataclass field.
    pages_per_wordline = 2

    # Derived shape values — ``wordlines_per_block``, ``total_chips``,
    # ``pages_per_chip``, ``total_blocks``, ``total_pages``,
    # ``capacity_bytes`` — are precomputed once in ``__post_init__``.
    # They used to be properties, but address translation runs once or
    # more per simulated flash operation and the property-call overhead
    # dominated; plain instance attributes are direct lookups.  They
    # are deliberately *not* declared as dataclass fields (not even
    # ``init=False`` ones): ``asdict``/``fields``/equality must keep
    # covering exactly the five defining numbers above, both for
    # ``from_dict`` round trips and for the experiment engine's
    # content-addressed result cache.
    if TYPE_CHECKING:
        wordlines_per_block: int
        total_chips: int
        pages_per_chip: int
        total_blocks: int
        total_pages: int
        capacity_bytes: int

    def __post_init__(self) -> None:
        for name in ("channels", "chips_per_channel", "blocks_per_chip",
                     "pages_per_block", "page_size"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.pages_per_block % 2 != 0:
            raise ValueError(
                "pages_per_block must be even (LSB/MSB pairs), got "
                f"{self.pages_per_block}"
            )
        set_attr = object.__setattr__  # frozen dataclass
        set_attr(self, "wordlines_per_block",
                 self.pages_per_block // self.pages_per_wordline)
        set_attr(self, "total_chips",
                 self.channels * self.chips_per_channel)
        set_attr(self, "pages_per_chip",
                 self.blocks_per_chip * self.pages_per_block)
        set_attr(self, "total_blocks",
                 self.total_chips * self.blocks_per_chip)
        set_attr(self, "total_pages",
                 self.total_blocks * self.pages_per_block)
        set_attr(self, "capacity_bytes",
                 self.total_pages * self.page_size)

    def chip_id(self, channel: int, chip: int) -> int:
        """Flatten ``(channel, chip)`` into a global chip id."""
        if not (0 <= channel < self.channels):
            raise AddressError(f"channel {channel} out of range")
        if not (0 <= chip < self.chips_per_channel):
            raise AddressError(f"chip {chip} out of range")
        return channel * self.chips_per_channel + chip

    def chip_coords(self, chip_id: int) -> "tuple[int, int]":
        """Inverse of :meth:`chip_id`: return ``(channel, chip)``."""
        if not (0 <= chip_id < self.total_chips):
            raise AddressError(f"chip id {chip_id} out of range")
        return divmod(chip_id, self.chips_per_channel)

    def ppn(self, addr: PhysicalPageAddress) -> int:
        """Encode a physical page address as a flat physical page number."""
        self.validate(addr)
        cid = self.chip_id(addr.channel, addr.chip)
        return (cid * self.blocks_per_chip + addr.block) \
            * self.pages_per_block + addr.page

    def address_of(self, ppn: int) -> PhysicalPageAddress:
        """Decode a flat physical page number into an address."""
        if not 0 <= ppn < self.total_pages:
            raise AddressError(f"ppn {ppn} out of range")
        # open-coded divmods (no call, no intermediate 2-tuples) and
        # tuple.__new__ to skip the NamedTuple __new__ wrapper: this is
        # the per-read hot path and the fields are by-construction valid
        ppb = self.pages_per_block
        block_global = ppn // ppb
        page = ppn - block_global * ppb
        bpc = self.blocks_per_chip
        cid = block_global // bpc
        block = block_global - cid * bpc
        cpc = self.chips_per_channel
        channel = cid // cpc
        chip = cid - channel * cpc
        return tuple.__new__(PhysicalPageAddress,
                             (channel, chip, block, page))

    def validate(self, addr: PhysicalPageAddress) -> None:
        """Raise :class:`AddressError` if ``addr`` is outside the device."""
        if not (0 <= addr.channel < self.channels):
            raise AddressError(f"channel {addr.channel} out of range")
        if not (0 <= addr.chip < self.chips_per_channel):
            raise AddressError(f"chip {addr.chip} out of range")
        if not (0 <= addr.block < self.blocks_per_chip):
            raise AddressError(f"block {addr.block} out of range")
        if not (0 <= addr.page < self.pages_per_block):
            raise AddressError(f"page {addr.page} out of range")

    def iter_chip_ids(self) -> Iterator[int]:
        """Iterate over all global chip ids."""
        return iter(range(self.total_chips))


#: The 16 GB configuration used in the paper's evaluation (Section 4.1).
PAPER_GEOMETRY = NandGeometry(
    channels=8,
    chips_per_channel=4,
    blocks_per_chip=512,
    pages_per_block=256,
    page_size=4096,
)

#: A small geometry suitable for unit tests and quick examples.
TINY_GEOMETRY = NandGeometry(
    channels=2,
    chips_per_channel=2,
    blocks_per_chip=16,
    pages_per_block=16,
    page_size=512,
)
