"""TLC device assembly: geometry, timing and a controller-compatible
array.

:class:`TlcNandArray` exposes the same operational interface as
:class:`~repro.nand.array.NandArray` (``program``/``read``/``erase``/
``is_programmed``, a ``timing`` with ``t_transfer``, aggregate
counters), so the existing discrete-event
:class:`~repro.sim.controller.StorageController` drives a TLC device
unchanged — only the FTL needs to understand three page types.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.nand.geometry import NandGeometry, PhysicalPageAddress
from repro.nand.tlc import TLC_PROGRAM_TIMES, TlcPageType, TlcScheme, \
    tlc_split_index
from repro.nand.tlc_device import TlcChip


@dataclasses.dataclass(frozen=True)
class TlcGeometry(NandGeometry):
    """Device shape for a 3-bit TLC array.

    ``pages_per_block`` must be divisible by 6 (the parent class
    requires LSB/MSB pairing arithmetic on even counts, and a TLC word
    line holds 3 pages).  ``wordlines_per_block`` is redefined to the
    3-page grouping via :attr:`pages_per_wordline`.
    """

    pages_per_wordline = 3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.pages_per_block % 6 != 0:
            raise ValueError(
                "TLC pages_per_block must be divisible by 6, got "
                f"{self.pages_per_block}"
            )


@dataclasses.dataclass(frozen=True)
class TlcTiming:
    """Operation latencies of a TLC die (seconds).

    Program times follow :data:`repro.nand.tlc.TLC_PROGRAM_TIMES`
    (500/2000/5500 us); reads and erases are slower than MLC, as is
    typical for 3-bit devices.
    """

    t_read: float = 80e-6
    t_erase: float = 10e-3
    t_transfer: float = 10e-6

    def program_time(self, ptype: TlcPageType) -> float:
        """Array program time for a TLC page type."""
        return TLC_PROGRAM_TIMES[ptype]


class TlcNandArray:
    """A complete TLC device, drop-in for the DES controller."""

    def __init__(self, geometry: Optional[TlcGeometry] = None,
                 timing: Optional[TlcTiming] = None,
                 scheme: TlcScheme = TlcScheme.RPS,
                 store_data: bool = False) -> None:
        self.geometry = geometry or TlcGeometry(
            channels=4, chips_per_channel=2, blocks_per_chip=64,
            pages_per_block=48, page_size=4096,
        )
        self.timing = timing or TlcTiming()
        self.scheme = scheme
        self.store_data = store_data
        self.chips: List[TlcChip] = [
            TlcChip(chip_id, self.geometry.blocks_per_chip,
                    self.geometry.wordlines_per_block,
                    scheme=scheme, store_data=store_data)
            for chip_id in self.geometry.iter_chip_ids()
        ]

    # ------------------------------------------------------------------

    def chip_at(self, addr: PhysicalPageAddress) -> TlcChip:
        """The chip owning ``addr``."""
        self.geometry.validate(addr)
        return self.chips[self.geometry.chip_id(addr.channel, addr.chip)]

    def page_type_of(self, addr: PhysicalPageAddress) -> TlcPageType:
        """TLC page type of the page at ``addr``."""
        return tlc_split_index(addr.page)[1]

    def program(self, addr: PhysicalPageAddress,
                data: Optional[bytes] = None) -> float:
        """Program the page at ``addr``; returns the array latency."""
        wordline, ptype = tlc_split_index(addr.page)
        return self.chip_at(addr).program(addr.block, wordline, ptype,
                                          data)

    def read(self, addr: PhysicalPageAddress
             ) -> Tuple[Optional[bytes], float]:
        """Read the page at ``addr``; returns ``(payload, latency)``."""
        wordline, ptype = tlc_split_index(addr.page)
        data = self.chip_at(addr).read(addr.block, wordline, ptype)
        return data, self.timing.t_read

    def erase(self, channel: int, chip: int, block: int) -> float:
        """Erase a block; returns the erase latency."""
        addr = PhysicalPageAddress(channel, chip, block, 0)
        self.chip_at(addr).erase(block)
        return self.timing.t_erase

    def is_programmed(self, addr: PhysicalPageAddress) -> bool:
        """Whether the page at ``addr`` holds programmed data."""
        wordline, ptype = tlc_split_index(addr.page)
        return self.chip_at(addr).blocks[addr.block].is_programmed(
            wordline, ptype)

    # ------------------------------------------------------------------
    # aggregate counters (BaseFtl.counters() reads lsb/msb_programs)

    @property
    def total_erases(self) -> int:
        """Total block erasures across all dies."""
        return sum(chip.erases for chip in self.chips)

    @property
    def total_programs(self) -> int:
        """Total page programs across all dies."""
        return sum(chip.total_programs for chip in self.chips)

    @property
    def total_reads(self) -> int:
        """Total page reads across all dies."""
        return sum(chip.reads for chip in self.chips)

    @property
    def lsb_programs(self) -> int:
        """Total LSB-page programs across all dies."""
        return sum(chip.programs[TlcPageType.LSB] for chip in self.chips)

    @property
    def csb_programs(self) -> int:
        """Total CSB-page programs across all dies."""
        return sum(chip.programs[TlcPageType.CSB] for chip in self.chips)

    @property
    def msb_programs(self) -> int:
        """Total MSB-page programs across all dies."""
        return sum(chip.programs[TlcPageType.MSB] for chip in self.chips)
