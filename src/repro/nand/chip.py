"""NAND die (chip) model with program-sequence enforcement.

A :class:`Chip` owns its erase blocks, enforces the active program-
sequence scheme (FPS or RPS) on every program operation, and accounts
operation counts and busy time so FTL-level experiments can derive
lifetime and utilisation metrics.
"""

from __future__ import annotations

from typing import List, Optional

from repro.nand.block import Block
from repro.nand.errors import ProgramSequenceError
from repro.nand.page_types import PageType
from repro.nand.sequence import SequenceScheme, constraint_violations
from repro.nand.timing import NandTiming


class Chip:
    """One NAND die.

    Args:
        chip_id: global chip id within the device.
        blocks: number of erase blocks on the die.
        wordlines_per_block: word lines (page pairs) per block.
        timing: operation latencies.
        scheme: program-sequence scheme this die enforces.
        store_data: retain page payloads (see :class:`Block`).
    """

    def __init__(
        self,
        chip_id: int,
        blocks: int,
        wordlines_per_block: int,
        timing: Optional[NandTiming] = None,
        scheme: SequenceScheme = SequenceScheme.RPS,
        store_data: bool = False,
    ) -> None:
        if blocks <= 0:
            raise ValueError(f"blocks must be positive, got {blocks}")
        self.chip_id = chip_id
        self.timing = timing or NandTiming()
        self.scheme = scheme
        self.blocks: List[Block] = [
            Block(i, wordlines_per_block, store_data=store_data)
            for i in range(blocks)
        ]
        self.lsb_programs = 0
        self.msb_programs = 0
        self.reads = 0
        self.erases = 0
        self.busy_time = 0.0

    # ------------------------------------------------------------------
    # operations (each returns the operation's array latency in seconds)

    def program(self, block: int, wordline: int, ptype: PageType,
                data: Optional[bytes] = None) -> float:
        """Program one page, enforcing the active sequence scheme.

        Raises:
            ProgramSequenceError: the program would violate the scheme.
            PageStateError: the page was already programmed.
        """
        blk = self.blocks[block]
        violations = constraint_violations(
            blk.is_programmed, blk.wordlines, wordline, ptype, self.scheme
        )
        if violations:
            raise ProgramSequenceError(
                f"chip {self.chip_id} block {block}: "
                + "; ".join(violations)
            )
        blk.program(wordline, ptype, data)
        if ptype is PageType.LSB:
            self.lsb_programs += 1
        else:
            self.msb_programs += 1
        duration = self.timing.program_time(ptype)
        self.busy_time += duration
        return duration

    def read(self, block: int, wordline: int,
             ptype: PageType) -> "tuple[Optional[bytes], float]":
        """Read one page; returns ``(payload, latency)``."""
        data = self.blocks[block].read(wordline, ptype)
        self.reads += 1
        duration = self.timing.t_read
        self.busy_time += duration
        return data, duration

    def erase(self, block: int) -> float:
        """Erase one block; returns the erase latency."""
        self.blocks[block].erase()
        self.erases += 1
        duration = self.timing.t_erase
        self.busy_time += duration
        return duration

    # ------------------------------------------------------------------
    # accounting

    @property
    def total_programs(self) -> int:
        """Total page programs since creation."""
        return self.lsb_programs + self.msb_programs

    @property
    def total_erases(self) -> int:
        """Total block erasures since creation."""
        return self.erases

    def erase_counts(self) -> List[int]:
        """Per-block erase counters (wear distribution)."""
        return [blk.erase_count for blk in self.blocks]

    def __repr__(self) -> str:
        return (
            f"Chip(id={self.chip_id}, scheme={self.scheme.value}, "
            f"programs={self.total_programs}, erases={self.erases})"
        )
