"""NAND die (chip) model with program-sequence enforcement.

A :class:`Chip` owns its erase blocks, enforces the active program-
sequence scheme (FPS or RPS) on every program operation, and accounts
operation counts and busy time so FTL-level experiments can derive
lifetime and utilisation metrics.
"""

from __future__ import annotations

from typing import List, Optional

from repro.nand.block import ERASED_CODE, PROGRAMMED_CODE, Block
from repro.nand.errors import ProgramSequenceError
from repro.nand.page_types import PageType
from repro.nand.sequence import SequenceScheme, constraint_violations
from repro.nand.timing import NandTiming


class Chip:
    """One NAND die.

    Args:
        chip_id: global chip id within the device.
        blocks: number of erase blocks on the die.
        wordlines_per_block: word lines (page pairs) per block.
        timing: operation latencies.
        scheme: program-sequence scheme this die enforces.
        store_data: retain page payloads (see :class:`Block`).
        track_history: retain per-block program history (see
            :class:`Block`).
    """

    def __init__(
        self,
        chip_id: int,
        blocks: int,
        wordlines_per_block: int,
        timing: Optional[NandTiming] = None,
        scheme: SequenceScheme = SequenceScheme.RPS,
        store_data: bool = False,
        track_history: bool = True,
    ) -> None:
        if blocks <= 0:
            raise ValueError(f"blocks must be positive, got {blocks}")
        self.chip_id = chip_id
        self.timing = timing or NandTiming()
        self.scheme = scheme
        #: scheme identity precomputed as plain booleans for the
        #: per-program legality check
        self._unconstrained = scheme is SequenceScheme.NONE
        self._fps = scheme is SequenceScheme.FPS
        #: program latencies indexed by PageType (IntEnum), precomputed
        #: so the per-program hot path avoids a method call
        self._prog_times = (self.timing.program_time(PageType.LSB),
                            self.timing.program_time(PageType.MSB))
        self.blocks: List[Block] = [
            Block(i, wordlines_per_block, store_data=store_data,
                  track_history=track_history)
            for i in range(blocks)
        ]
        self.lsb_programs = 0
        self.msb_programs = 0
        self.reads = 0
        self.erases = 0
        self.busy_time = 0.0

    # ------------------------------------------------------------------
    # operations (each returns the operation's array latency in seconds)

    def program(self, block: int, wordline: int, ptype: PageType,
                data: Optional[bytes] = None) -> float:
        """Program one page, enforcing the active sequence scheme.

        Raises:
            ProgramSequenceError: the program would violate the scheme.
            PageStateError: the page was already programmed.
        """
        blk = self.blocks[block]
        wordlines = blk.wordlines
        if not 0 <= wordline < wordlines:
            raise ValueError(
                f"wordline {wordline} out of range [0, {wordlines})"
            )
        # Inlined legality check against the block's raw state codes.
        # This is the equivalent of ``constraint_violations`` (pairing,
        # Constraints 1-3, plus Constraint 4 under FPS) without the
        # predicate-callable indirection; the slow path below is taken
        # only to build the error message once a violation is certain.
        states = blk._states
        if ptype is PageType.LSB:
            index = 2 * wordline
            legal = self._unconstrained or (
                (wordline == 0 or states[index - 2] == PROGRAMMED_CODE)
                and (not self._fps or wordline < 2
                     or states[index - 3] == PROGRAMMED_CODE))
        else:
            index = 2 * wordline + 1
            legal = self._unconstrained or (
                states[index - 1] == PROGRAMMED_CODE
                and (wordline == 0 or states[index - 2] == PROGRAMMED_CODE)
                and (wordline + 1 >= wordlines
                     or states[index + 1] == PROGRAMMED_CODE))
        if not legal:
            violations = constraint_violations(
                blk.is_programmed, wordlines, wordline, ptype, self.scheme
            )
            raise ProgramSequenceError(
                f"chip {self.chip_id} block {block}: "
                + "; ".join(violations)
            )
        if states[index] == ERASED_CODE:
            # Open-coded Block.program (its index math and range check
            # are already done above); the slow path delegates so the
            # double-program error is raised with Block's exact message.
            states[index] = PROGRAMMED_CODE
            blk._used += 1
            if blk._data is not None:
                blk._data[index] = data
            if blk.track_history:
                blk.program_history.append(index)
        else:
            blk.program(wordline, ptype, data)
        if ptype is PageType.LSB:
            self.lsb_programs += 1
        else:
            self.msb_programs += 1
        duration = self._prog_times[ptype]
        self.busy_time += duration
        return duration

    def read(self, block: int, wordline: int,
             ptype: PageType) -> "tuple[Optional[bytes], float]":
        """Read one page; returns ``(payload, latency)``."""
        blk = self.blocks[block]
        index = 2 * wordline + ptype
        # Open-coded Block.read; the error path delegates so reads of
        # erased/destroyed pages raise Block's exact ECC error.
        if blk._states[index] == PROGRAMMED_CODE:
            data = blk._data[index] if blk._data is not None else None
        else:
            data = blk.read(wordline, ptype)
        self.reads += 1
        duration = self.timing.t_read
        self.busy_time += duration
        return data, duration

    def erase(self, block: int) -> float:
        """Erase one block; returns the erase latency."""
        self.blocks[block].erase()
        self.erases += 1
        duration = self.timing.t_erase
        self.busy_time += duration
        return duration

    # ------------------------------------------------------------------
    # accounting

    @property
    def total_programs(self) -> int:
        """Total page programs since creation."""
        return self.lsb_programs + self.msb_programs

    @property
    def total_erases(self) -> int:
        """Total block erasures since creation."""
        return self.erases

    def erase_counts(self) -> List[int]:
        """Per-block erase counters (wear distribution)."""
        return [blk.erase_count for blk in self.blocks]

    def __repr__(self) -> str:
        return (
            f"Chip(id={self.chip_id}, scheme={self.scheme.value}, "
            f"programs={self.total_programs}, erases={self.erases})"
        )
