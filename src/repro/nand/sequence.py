"""Program-sequence schemes and their ordering constraints.

The paper formalises the conventional fixed program sequence (FPS) of
Figure 2(b) as four constraints on the in-block program order, and
defines the relaxed program sequence (RPS) as the scheme that keeps
only the first three:

* **Constraint 1** — before ``LSB(k)`` is written, ``LSB(k-1)`` must be
  written (k >= 1).
* **Constraint 2** — before ``MSB(k)`` is written, ``MSB(k-1)`` must be
  written (k >= 1).
* **Constraint 3** — before ``MSB(k)`` is written, ``LSB(k+1)`` must be
  written (k >= 0, while word line k+1 exists).
* **Constraint 4** (FPS only; the over-specification RPS removes) —
  before ``LSB(k)`` is written, ``MSB(k-2)`` must be written (k >= 2).

This module provides the incremental constraint check used by
:class:`repro.nand.chip.Chip` at program time.  Whole-order validation
and order generators live in :mod:`repro.core.rps`.
"""

from __future__ import annotations

import enum
from typing import Callable, List

from repro.nand.page_types import PageType


class SequenceScheme(enum.Enum):
    """Which program-sequence constraint set a device enforces."""

    #: Fixed program sequence: Constraints 1-4 (conventional MLC).
    FPS = "fps"
    #: Relaxed program sequence: Constraints 1-3 (the paper's proposal).
    RPS = "rps"
    #: No ordering constraints (used for worst-case interference studies).
    NONE = "none"

    @property
    def constraints(self) -> "tuple[int, ...]":
        """The constraint numbers this scheme enforces."""
        if self is SequenceScheme.FPS:
            return (1, 2, 3, 4)
        if self is SequenceScheme.RPS:
            return (1, 2, 3)
        return ()


def constraint_violations(
    is_programmed: Callable[[int, PageType], bool],
    wordlines: int,
    wordline: int,
    ptype: PageType,
    scheme: SequenceScheme,
) -> List[str]:
    """Check whether programming ``(wordline, ptype)`` next is legal.

    Args:
        is_programmed: predicate reporting whether a page of the block
            has already been programmed.
        wordlines: number of word lines in the block.
        wordline: target word line of the program operation.
        ptype: target page type of the program operation.
        scheme: the active program-sequence scheme.

    Returns:
        A list of human-readable violation descriptions; empty when the
        program operation is permitted.  Because Constraints 1 and 2 are
        inductive, checking only the immediately preceding word line is
        sufficient when every earlier program also passed this check.
    """
    if not (0 <= wordline < wordlines):
        raise ValueError(f"wordline {wordline} out of range [0, {wordlines})")
    violations: List[str] = []
    if scheme is SequenceScheme.NONE:
        return violations
    if ptype is PageType.MSB and not is_programmed(wordline, PageType.LSB):
        # Physical pairing: an MSB program refines the Vth states the LSB
        # program established, so the LSB page must exist first.  Implied
        # by Constraints 1-3 everywhere except the last word line.
        violations.append(
            f"pairing: LSB({wordline}) must be programmed before "
            f"MSB({wordline})"
        )
    if wordline >= 1 and not is_programmed(wordline - 1, ptype):
        number = 1 if ptype is PageType.LSB else 2
        violations.append(
            f"constraint {number}: {ptype.name}({wordline - 1}) not yet "
            f"programmed before {ptype.name}({wordline})"
        )
    if ptype is PageType.MSB and wordline + 1 < wordlines \
            and not is_programmed(wordline + 1, PageType.LSB):
        violations.append(
            f"constraint 3: LSB({wordline + 1}) not yet programmed before "
            f"MSB({wordline})"
        )
    if scheme is SequenceScheme.FPS and ptype is PageType.LSB \
            and wordline >= 2 and not is_programmed(wordline - 2, PageType.MSB):
        violations.append(
            f"constraint 4: MSB({wordline - 2}) not yet programmed before "
            f"LSB({wordline})"
        )
    return violations
