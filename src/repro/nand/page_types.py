"""MLC page types and page-index conventions.

A 2-bit MLC word line (WL) stores two logical pages: the LSB page
(programmed first, fast, forms two coarse Vth states) and the MSB page
(programmed second, slow, splits the window into four states).  Within a
block we identify a page either by the pair ``(wordline, PageType)`` or
by a canonical flat *page index*::

    index = 2 * wordline + (0 for LSB, 1 for MSB)

The canonical index is an addressing convention only; it says nothing
about program order.  Program order is governed by the sequence scheme
(see :mod:`repro.core.rps`).
"""

from __future__ import annotations

import enum
from typing import Tuple


class PageType(enum.IntEnum):
    """The two logical page types of a 2-bit MLC word line."""

    LSB = 0
    MSB = 1

    @property
    def is_fast(self) -> bool:
        """True for the fast (LSB) page type."""
        return self is PageType.LSB

    def paired(self) -> "PageType":
        """Return the other page type sharing the same word line."""
        return PageType.MSB if self is PageType.LSB else PageType.LSB


def page_index(wordline: int, ptype: PageType) -> int:
    """Canonical flat index of page ``(wordline, ptype)`` within a block."""
    if wordline < 0:
        raise ValueError(f"wordline must be non-negative, got {wordline}")
    return 2 * wordline + int(ptype)


# Table lookup instead of enum construction: ``PageType(x)`` walks the
# enum machinery and is measurable on the per-page-program hot path.
_PAGE_TYPES: Tuple[PageType, PageType] = (PageType.LSB, PageType.MSB)


def split_index(index: int) -> Tuple[int, PageType]:
    """Inverse of :func:`page_index`: return ``(wordline, ptype)``."""
    if index < 0:
        raise ValueError(f"page index must be non-negative, got {index}")
    return index >> 1, _PAGE_TYPES[index & 1]


def paired_index(index: int) -> int:
    """Canonical index of the page sharing the word line with ``index``."""
    wordline, ptype = split_index(index)
    return page_index(wordline, ptype.paired())
