"""MLC NAND flash device model.

This subpackage models the NAND substrate the paper's FTLs run on: the
device geometry (channels, chips, blocks, pages), the 2-bit MLC page
structure (LSB/MSB pages sharing a word line), operation timing, the
program-sequence constraint machinery (FPS vs RPS), the destructive
nature of MSB programs, and sudden-power-off fault injection.
"""

from repro.nand.errors import (
    EccUncorrectableError,
    NandError,
    PageStateError,
    ProgramSequenceError,
)
from repro.nand.geometry import NandGeometry, PhysicalPageAddress
from repro.nand.page_types import (
    PageType,
    page_index,
    paired_index,
    split_index,
)
from repro.nand.sequence import SequenceScheme, constraint_violations
from repro.nand.timing import NandTiming
from repro.nand.block import Block, BlockState, PageState
from repro.nand.chip import Chip
from repro.nand.array import NandArray
from repro.nand.power import PowerLossInjector, simulate_power_loss_during_msb

__all__ = [
    "NandError",
    "ProgramSequenceError",
    "PageStateError",
    "EccUncorrectableError",
    "NandGeometry",
    "PhysicalPageAddress",
    "PageType",
    "page_index",
    "paired_index",
    "split_index",
    "SequenceScheme",
    "constraint_violations",
    "NandTiming",
    "PageState",
    "BlockState",
    "Block",
    "Chip",
    "NandArray",
    "PowerLossInjector",
    "simulate_power_loss_during_msb",
]
