"""Erase-block state model.

A :class:`Block` tracks the program state of each of its pages, an
erase counter, the full in-block program history (needed both for
sequence-constraint enforcement and for the cell-to-cell interference
analysis of the reliability experiments), and optionally the page
payloads themselves (used by parity-backup recovery tests).

Page state is stored as a compact ``bytearray`` of state codes (one
byte per page) rather than a list of :class:`PageState` members:
endurance-scale runs keep millions of blocks' worth of page state live,
and the flat byte layout both shrinks that footprint and lets the chip's
sequence-legality check read raw codes without enum dispatch.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.nand.errors import EccUncorrectableError, PageStateError
from repro.nand.page_types import PageType, page_index


class PageState(enum.Enum):
    """Device-level state of a single page."""

    ERASED = "erased"
    PROGRAMMED = "programmed"
    #: Data lost (e.g. a paired LSB destroyed by an interrupted MSB program).
    DESTROYED = "destroyed"


# Compact state codes used inside the bytearray page store.  The codes
# are part of the module's internal contract with ``chip.py``'s inlined
# legality check; translate with ``_STATE_OF_CODE`` at the API boundary.
ERASED_CODE = 0
PROGRAMMED_CODE = 1
DESTROYED_CODE = 2

_STATE_OF_CODE = (PageState.ERASED, PageState.PROGRAMMED,
                  PageState.DESTROYED)


class BlockState(enum.Enum):
    """Coarse device-level block state derived from its pages."""

    FREE = "free"
    OPEN = "open"
    FULL = "full"


class Block:
    """One NAND erase block.

    Args:
        block_id: index of the block within its chip.
        wordlines: number of word lines (page pairs) in the block.
        store_data: when True, page payloads are retained so they can be
            read back (needed by recovery tests and examples); when
            False only metadata is tracked, which keeps large
            performance simulations cheap.
        track_history: when True (default), :attr:`program_history`
            records every page program since the last erase — required
            by the reliability/interference analyses.  Performance
            experiments pass False to cap the otherwise unbounded
            per-block history growth.
    """

    def __init__(self, block_id: int, wordlines: int,
                 store_data: bool = False,
                 track_history: bool = True) -> None:
        if wordlines <= 0:
            raise ValueError(f"wordlines must be positive, got {wordlines}")
        self.block_id = block_id
        self.wordlines = wordlines
        self.pages = 2 * wordlines
        self.store_data = store_data
        self.track_history = track_history
        self.erase_count = 0
        #: per-page state codes (see ``ERASED_CODE`` & friends).
        self._states = bytearray(self.pages)
        self._data: Optional[List[Optional[bytes]]] = \
            [None] * self.pages if store_data else None
        #: Page indices in the order they were programmed since last
        #: erase (empty and never appended to when ``track_history`` is
        #: False).
        self.program_history: List[int] = []
        #: pages currently holding data (programmed or destroyed);
        #: maintained incrementally so block-state queries are O(1).
        self._used = 0

    # ------------------------------------------------------------------
    # queries

    def page_state(self, index: int) -> PageState:
        """State of the page with canonical in-block index ``index``."""
        return _STATE_OF_CODE[self._states[index]]

    def is_programmed(self, wordline: int, ptype: PageType) -> bool:
        """Whether page ``(wordline, ptype)`` holds programmed data."""
        return self._states[page_index(wordline, ptype)] == PROGRAMMED_CODE

    def programmed_count(self, ptype: Optional[PageType] = None) -> int:
        """Number of programmed (or destroyed) pages, optionally by type."""
        if ptype is None:
            return self._used
        count = 0
        states = self._states
        for index in range(int(ptype), self.pages, 2):
            if states[index] != ERASED_CODE:
                count += 1
        return count

    def free_count(self, ptype: Optional[PageType] = None) -> int:
        """Number of still-erased pages, optionally filtered by type."""
        if ptype is None:
            return self.pages - self._used
        count = 0
        states = self._states
        for index in range(int(ptype), self.pages, 2):
            if states[index] == ERASED_CODE:
                count += 1
        return count

    @property
    def state(self) -> BlockState:
        """Derived coarse block state."""
        used = self._used
        if used == 0:
            return BlockState.FREE
        if used == self.pages:
            return BlockState.FULL
        return BlockState.OPEN

    # ------------------------------------------------------------------
    # operations

    def program(self, wordline: int, ptype: PageType,
                data: Optional[bytes] = None) -> None:
        """Record a page program.

        Sequence-scheme legality is the chip's responsibility (see
        :meth:`repro.nand.chip.Chip.program`); the block only rejects
        double programming without an intervening erase.
        """
        index = 2 * wordline + int(ptype)
        if index >= self.pages or wordline < 0:
            raise ValueError(
                f"wordline {wordline} out of range [0, {self.wordlines})"
            )
        states = self._states
        if states[index] != ERASED_CODE:
            raise PageStateError(
                f"block {self.block_id} page {index} is "
                f"{_STATE_OF_CODE[states[index]].value}; "
                f"program requires an erase"
            )
        states[index] = PROGRAMMED_CODE
        self._used += 1
        if self._data is not None:
            self._data[index] = data
        if self.track_history:
            self.program_history.append(index)

    def read(self, wordline: int, ptype: PageType) -> Optional[bytes]:
        """Read a page back.

        Returns the stored payload (or None when the block does not
        retain data).  Reading an erased or destroyed page raises
        :class:`EccUncorrectableError`, mirroring how a real controller
        observes a lost page.
        """
        index = 2 * wordline + int(ptype)
        state = self._states[index]
        if state != PROGRAMMED_CODE:
            raise EccUncorrectableError(
                f"block {self.block_id} page {index} is "
                f"{_STATE_OF_CODE[state].value}"
            )
        return self._data[index] if self._data is not None else None

    def erase(self) -> None:
        """Erase the block, resetting all page state and the history."""
        states = self._states
        if type(states) is bytearray:
            self._states = bytearray(self.pages)
        else:
            # Unified device-wide store (NandArray.unify_state_store):
            # the block's states are a memoryview slice that aliased
            # buffers depend on, so zero in place instead of rebinding.
            states[:] = bytes(self.pages)
        if self._data is not None:
            self._data = [None] * self.pages
        if self.program_history:
            self.program_history = []
        self._used = 0
        self.erase_count += 1

    def destroy_page(self, wordline: int, ptype: PageType) -> None:
        """Mark a programmed page's data as lost (power-loss modelling)."""
        index = page_index(wordline, ptype)
        if self._states[index] != PROGRAMMED_CODE:
            raise PageStateError(
                f"cannot destroy page {index}: state is "
                f"{_STATE_OF_CODE[self._states[index]].value}"
            )
        self._states[index] = DESTROYED_CODE
        if self._data is not None:
            self._data[index] = None

    def __getstate__(self) -> dict:
        """Pickle support: flatten a unified-store memoryview.

        After :meth:`repro.nand.array.NandArray.unify_state_store`,
        ``_states`` is a memoryview slice of the device-wide store;
        memoryviews do not pickle, so snapshot the bytes and let the
        array re-unify on restore (its own ``__setstate__`` runs after
        the blocks').
        """
        state = self.__dict__.copy()
        states = state["_states"]
        if type(states) is not bytearray:
            state["_states"] = bytearray(states)
        return state

    def __repr__(self) -> str:
        return (
            f"Block(id={self.block_id}, state={self.state.value}, "
            f"programmed={self.programmed_count()}/{self.pages}, "
            f"erases={self.erase_count})"
        )
