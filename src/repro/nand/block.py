"""Erase-block state model.

A :class:`Block` tracks the program state of each of its pages, an
erase counter, the full in-block program history (needed both for
sequence-constraint enforcement and for the cell-to-cell interference
analysis of the reliability experiments), and optionally the page
payloads themselves (used by parity-backup recovery tests).
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.nand.errors import EccUncorrectableError, PageStateError
from repro.nand.page_types import PageType, page_index, split_index


class PageState(enum.Enum):
    """Device-level state of a single page."""

    ERASED = "erased"
    PROGRAMMED = "programmed"
    #: Data lost (e.g. paired LSB destroyed by an interrupted MSB program).
    DESTROYED = "destroyed"


class BlockState(enum.Enum):
    """Coarse device-level block state derived from its pages."""

    FREE = "free"
    OPEN = "open"
    FULL = "full"


class Block:
    """One NAND erase block.

    Args:
        block_id: index of the block within its chip.
        wordlines: number of word lines (page pairs) in the block.
        store_data: when True, page payloads are retained so they can be
            read back (needed by recovery tests and examples); when
            False only metadata is tracked, which keeps large
            performance simulations cheap.
    """

    def __init__(self, block_id: int, wordlines: int,
                 store_data: bool = False) -> None:
        if wordlines <= 0:
            raise ValueError(f"wordlines must be positive, got {wordlines}")
        self.block_id = block_id
        self.wordlines = wordlines
        self.store_data = store_data
        self.erase_count = 0
        self._states: List[PageState] = [PageState.ERASED] * (2 * wordlines)
        self._data: List[Optional[bytes]] = [None] * (2 * wordlines)
        #: Page indices in the order they were programmed since last erase.
        self.program_history: List[int] = []

    # ------------------------------------------------------------------
    # queries

    @property
    def pages(self) -> int:
        """Total pages in the block."""
        return 2 * self.wordlines

    def page_state(self, index: int) -> PageState:
        """State of the page with canonical in-block index ``index``."""
        return self._states[index]

    def is_programmed(self, wordline: int, ptype: PageType) -> bool:
        """Whether page ``(wordline, ptype)`` holds programmed data."""
        return self._states[page_index(wordline, ptype)] is PageState.PROGRAMMED

    def programmed_count(self, ptype: Optional[PageType] = None) -> int:
        """Number of programmed (or destroyed) pages, optionally by type."""
        count = 0
        for index, state in enumerate(self._states):
            if state is PageState.ERASED:
                continue
            if ptype is None or split_index(index)[1] is ptype:
                count += 1
        return count

    def free_count(self, ptype: Optional[PageType] = None) -> int:
        """Number of still-erased pages, optionally filtered by type."""
        count = 0
        for index, state in enumerate(self._states):
            if state is not PageState.ERASED:
                continue
            if ptype is None or split_index(index)[1] is ptype:
                count += 1
        return count

    @property
    def state(self) -> BlockState:
        """Derived coarse block state."""
        used = sum(1 for s in self._states if s is not PageState.ERASED)
        if used == 0:
            return BlockState.FREE
        if used == self.pages:
            return BlockState.FULL
        return BlockState.OPEN

    # ------------------------------------------------------------------
    # operations

    def program(self, wordline: int, ptype: PageType,
                data: Optional[bytes] = None) -> None:
        """Record a page program.

        Sequence-scheme legality is the chip's responsibility (see
        :meth:`repro.nand.chip.Chip.program`); the block only rejects
        double programming without an intervening erase.
        """
        index = page_index(wordline, ptype)
        if index >= self.pages:
            raise ValueError(
                f"wordline {wordline} out of range [0, {self.wordlines})"
            )
        if self._states[index] is not PageState.ERASED:
            raise PageStateError(
                f"block {self.block_id} page {index} is "
                f"{self._states[index].value}; program requires an erase"
            )
        self._states[index] = PageState.PROGRAMMED
        if self.store_data:
            self._data[index] = data
        self.program_history.append(index)

    def read(self, wordline: int, ptype: PageType) -> Optional[bytes]:
        """Read a page back.

        Returns the stored payload (or None when the block does not
        retain data).  Reading an erased or destroyed page raises
        :class:`EccUncorrectableError`, mirroring how a real controller
        observes a lost page.
        """
        index = page_index(wordline, ptype)
        state = self._states[index]
        if state is not PageState.PROGRAMMED:
            raise EccUncorrectableError(
                f"block {self.block_id} page {index} is {state.value}"
            )
        return self._data[index] if self.store_data else None

    def erase(self) -> None:
        """Erase the block, resetting all page state and the history."""
        self._states = [PageState.ERASED] * self.pages
        self._data = [None] * self.pages
        self.program_history = []
        self.erase_count += 1

    def destroy_page(self, wordline: int, ptype: PageType) -> None:
        """Mark a programmed page's data as lost (power-loss modelling)."""
        index = page_index(wordline, ptype)
        if self._states[index] is not PageState.PROGRAMMED:
            raise PageStateError(
                f"cannot destroy page {index}: state is "
                f"{self._states[index].value}"
            )
        self._states[index] = PageState.DESTROYED
        self._data[index] = None

    def __repr__(self) -> str:
        return (
            f"Block(id={self.block_id}, state={self.state.value}, "
            f"programmed={self.programmed_count()}/{self.pages}, "
            f"erases={self.erase_count})"
        )
