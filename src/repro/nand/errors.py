"""Exception hierarchy for the NAND device model."""


class NandError(Exception):
    """Base class for all NAND device model errors."""


class ProgramSequenceError(NandError):
    """A page program violated the active program-sequence scheme.

    Raised by :class:`repro.nand.chip.Chip` when a program operation
    would break one of the ordering constraints (Constraints 1-4 of the
    paper for FPS, Constraints 1-3 for RPS).
    """


class PageStateError(NandError):
    """An operation was issued against a page in an incompatible state.

    Examples: programming an already-programmed page without an erase,
    or erasing a block while one of its pages is being programmed.
    """


class EccUncorrectableError(NandError):
    """A page read returned more raw bit errors than ECC can correct.

    In this model the error is raised when reading a page whose data was
    destroyed (e.g. a paired LSB page lost to a sudden power-off during
    the MSB program) or a page that was never programmed.
    """


class AddressError(NandError, IndexError):
    """A physical address fell outside the device geometry."""


class ReadOnlyDeviceError(NandError):
    """A write was submitted to a device in read-only degraded mode.

    Raised (as a request error, not an exception crossing the
    simulation loop) once the spare-block reserve is exhausted and the
    controller stops accepting writes; reads keep being served.
    """
