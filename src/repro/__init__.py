"""repro — reproduction of "Improving Performance and Lifetime of NAND
Storage Systems Using Relaxed Program Sequence" (Park et al., DAC 2016).

The package implements the paper's full stack:

* :mod:`repro.nand` — a 2-bit MLC NAND device model with LSB/MSB page
  asymmetry, program-sequence enforcement (FPS and the paper's RPS),
  destructive MSB programs and power-loss injection;
* :mod:`repro.core` — the contribution: RPS program orders and
  validators, and flexFTL with two-phase block management, adaptive
  page allocation and per-block parity backup;
* :mod:`repro.ftl` — the FPS-based baseline FTLs (pageFTL, parityFTL,
  rtfFTL) and their shared mapping/GC machinery;
* :mod:`repro.reliability` — the Monte-Carlo interference/Vth/BER
  substrate behind the Figure 4 validation;
* :mod:`repro.sim` — a discrete-event storage-system simulator
  (controller, channels, chips, write buffer, hosts);
* :mod:`repro.workloads` — emulators of the five Table 1 workloads;
* :mod:`repro.metrics` / :mod:`repro.experiments` — the evaluation
  harness regenerating every table and figure.

Quick start::

    from repro.experiments import run_workload, ExperimentConfig
    from repro.experiments import experiment_span
    from repro.scenarios import make_preset

    config = ExperimentConfig()
    span = experiment_span(config)
    scenario = make_preset("varmail", span, total_ops=4000)
    result = run_workload(ftl_name="flexFTL", scenario=scenario,
                          config=config)
    print(result.iops, result.erases)
"""

from repro.core import FlexFtl
from repro.core.rps import (
    fps_order,
    is_valid_order,
    random_rps_order,
    rps_full_order,
    rps_half_order,
    validate_order,
)
from repro.ftl import PageFtl, ParityFtl, RtfFtl
from repro.nand import (
    NandArray,
    NandGeometry,
    NandTiming,
    PageType,
    SequenceScheme,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "FlexFtl",
    "PageFtl",
    "ParityFtl",
    "RtfFtl",
    "NandArray",
    "NandGeometry",
    "NandTiming",
    "PageType",
    "SequenceScheme",
    "fps_order",
    "rps_full_order",
    "rps_half_order",
    "random_rps_order",
    "validate_order",
    "is_valid_order",
]
