"""Tests for the storage controller and the two host models."""

import pytest

from repro.ftl.pageftl import PageFtl
from repro.nand.timing import NandTiming
from repro.sim.host import (
    ClosedLoopHost,
    StreamOp,
    TraceReplayHost,
    run_closed_loop,
    run_trace,
)
from repro.sim.queues import Request, RequestKind

from tests.helpers import build_small_system


class TestWriteSemantics:
    def test_write_completes_on_buffer_admission(self, small_geometry):
        sim, _, buffer, _, controller = build_small_system(
            PageFtl, small_geometry, buffer_pages=8)
        request = Request(0.0, RequestKind.WRITE, 0, 4)
        controller.submit(request)
        # Admission is immediate: completed before any program finishes.
        assert request.completed_at == sim.now
        assert controller.stats.completed_writes == 1
        sim.run()

    def test_full_buffer_delays_completion(self, small_geometry):
        timing = NandTiming()
        sim, _, buffer, _, controller = build_small_system(
            PageFtl, small_geometry, buffer_pages=4, timing=timing)
        big = Request(0.0, RequestKind.WRITE, 0, 12)
        controller.submit(big)
        assert big.completed_at is None  # 12 pages > 4 slots
        sim.run()
        assert big.completed_at is not None
        assert big.completed_at > 0.0

    def test_buffer_drains_to_nand(self, small_geometry):
        sim, array, buffer, _, controller = build_small_system(
            PageFtl, small_geometry, buffer_pages=8)
        controller.submit(Request(0.0, RequestKind.WRITE, 0, 6))
        sim.run()
        assert buffer.is_empty
        assert array.total_programs == 6


class TestReadSemantics:
    def test_unmapped_read_completes_instantly(self, small_geometry):
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry)
        request = Request(0.0, RequestKind.READ, 5, 2)
        controller.submit(request)
        assert request.completed_at == sim.now

    def test_buffered_data_served_from_buffer(self, small_geometry):
        # 4 chips take the first 4 pages in flight; pages 4-7 stay
        # buffered, so a read of page 7 is a buffer hit.
        sim, _, buffer, _, controller = build_small_system(
            PageFtl, small_geometry, buffer_pages=8)
        controller.submit(Request(0.0, RequestKind.WRITE, 0, 8))
        assert buffer.contains(7)
        read = Request(0.0, RequestKind.READ, 7, 1)
        controller.submit(read)
        assert read.completed_at == sim.now
        assert controller.stats.buffer_read_hits == 1
        sim.run()

    def test_flash_read_takes_device_time(self, small_geometry):
        timing = NandTiming()
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry, timing=timing)
        controller.submit(Request(0.0, RequestKind.WRITE, 3, 1))
        sim.run()  # flush to flash
        read = Request(sim.now, RequestKind.READ, 3, 1)
        controller.submit(read)
        sim.run()
        assert read.latency >= timing.t_read

    def test_read_of_many_pages_fans_out(self, small_geometry):
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry, buffer_pages=16)
        controller.submit(Request(0.0, RequestKind.WRITE, 0, 8))
        sim.run()
        read = Request(sim.now, RequestKind.READ, 0, 8)
        controller.submit(read)
        sim.run()
        assert read.completed_at is not None
        assert controller.stats.completed_reads == 1


class TestChannelsAndTiming:
    def test_same_channel_transfers_serialise(self):
        from repro.nand.geometry import NandGeometry
        geometry = NandGeometry(channels=1, chips_per_channel=2,
                                blocks_per_chip=8, pages_per_block=8,
                                page_size=512)
        timing = NandTiming()
        sim, array, _, _, controller = build_small_system(
            PageFtl, geometry, buffer_pages=8, timing=timing)
        controller.submit(Request(0.0, RequestKind.WRITE, 0, 2))
        sim.run()
        # Two programs on two chips of one channel: the second transfer
        # waited for the first, so the makespan exceeds one program.
        assert sim.now >= timing.t_lsb_prog + 2 * timing.t_transfer

    def test_in_flight_tracking(self, small_geometry):
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry)
        controller.submit(Request(0.0, RequestKind.WRITE, 0, 1))
        assert len(controller.in_flight) == 1
        sim.run()
        assert controller.in_flight == {}

    def test_host_idle_flag(self, small_geometry):
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry, buffer_pages=32)
        assert controller.host_idle()
        # More pages than chips: some stay buffered, so host work is
        # pending (in-flight-only work does not count as pending).
        controller.submit(Request(0.0, RequestKind.WRITE, 0, 20))
        assert not controller.host_idle()
        sim.run()
        assert controller.host_idle()


class TestTraceReplayHost:
    def test_arrivals_fire_at_trace_times(self, small_geometry):
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry)
        trace = [
            Request(0.1, RequestKind.WRITE, 0, 1),
            Request(0.5, RequestKind.WRITE, 1, 1),
        ]
        stats = run_trace(sim, controller, trace)
        assert stats.completed_writes == 2
        assert stats.first_arrival == pytest.approx(0.1)

    def test_unsorted_trace_rejected(self, small_geometry):
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry)
        trace = [
            Request(0.5, RequestKind.WRITE, 0, 1),
            Request(0.1, RequestKind.WRITE, 1, 1),
        ]
        with pytest.raises(ValueError):
            TraceReplayHost(sim, controller, trace)

    def test_empty_trace(self, small_geometry):
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry)
        stats = run_trace(sim, controller, [])
        assert stats.completed_requests == 0


class TestClosedLoopHost:
    def test_stream_issues_serially(self, small_geometry):
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry, buffer_pages=2)
        ops = [StreamOp(RequestKind.WRITE, i, 1) for i in range(10)]
        stats = run_closed_loop(sim, controller, [ops])
        assert stats.completed_writes == 10

    def test_think_time_spaces_issues(self, small_geometry):
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry)
        ops = [StreamOp(RequestKind.WRITE, i, 1, think_after=0.1)
               for i in range(5)]
        stats = run_closed_loop(sim, controller, [ops])
        # 4 think gaps of 0.1 s dominate the makespan.
        assert stats.elapsed >= 0.4

    def test_multiple_streams_interleave(self, small_geometry):
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry, buffer_pages=16)
        streams = [
            [StreamOp(RequestKind.WRITE, 100 * s + i, 1)
             for i in range(8)]
            for s in range(3)
        ]
        stats = run_closed_loop(sim, controller, streams)
        assert stats.completed_writes == 24

    def test_remaining_tracks_progress(self, small_geometry):
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry)
        host = ClosedLoopHost(sim, controller,
                              [[StreamOp(RequestKind.WRITE, 0, 1)]])
        assert host.remaining == 1
        host.start()
        sim.run()
        assert host.remaining == 0

    def test_empty_stream_list(self, small_geometry):
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry)
        host = ClosedLoopHost(sim, controller, [])
        assert host.remaining == 0
        host.start()
        assert sim.pending == 0
        sim.run()
        assert controller.stats.completed_requests == 0

    def test_empty_streams_among_nonempty_skipped(self, small_geometry):
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry)
        streams = [[], [StreamOp(RequestKind.WRITE, 0, 1)], []]
        stats = run_closed_loop(sim, controller, streams)
        assert stats.completed_writes == 1

    def test_trailing_think_leaves_no_dangling_event(self,
                                                     small_geometry):
        # A nonzero think_after on the last op must not schedule a
        # wake-up past the final completion: the stream is exhausted,
        # so the makespan and event queue end with the device work.
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry)
        ops = [StreamOp(RequestKind.WRITE, 0, 1, think_after=100.0)]
        stats = run_closed_loop(sim, controller, [ops])
        assert stats.completed_writes == 1
        assert sim.pending == 0
        assert sim.now < 100.0

    def test_on_complete_fires_once_per_request(self, small_geometry):
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry, buffer_pages=2)
        completions = []
        controller.completion_hook = \
            lambda request, now: completions.append(request)
        ops = [StreamOp(RequestKind.WRITE, i % 3, 2) for i in range(6)]
        ops += [StreamOp(RequestKind.READ, i % 3, 2) for i in range(6)]
        run_closed_loop(sim, controller, [ops])
        assert len(completions) == len(ops)
        assert len(set(map(id, completions))) == len(ops)


class TestSteppingConfig:
    def test_vector_min_below_two_rejected(self, small_geometry):
        from repro.sim.controller import StorageController

        sim, array, buffer, ftl, controller = build_small_system(
            PageFtl, small_geometry)
        with pytest.raises(ValueError, match="vector_min"):
            StorageController(sim, array, ftl, buffer, controller.stats,
                              vector_min=1)

    def test_batching_off_still_completes_requests(self, small_geometry):
        from repro.ftl.base import FtlConfig
        from repro.nand.array import NandArray
        from repro.nand.sequence import SequenceScheme
        from repro.sim.controller import StorageController
        from repro.sim.kernel import Simulator
        from repro.sim.queues import WriteBuffer
        from repro.sim.stats import SimStats

        sim = Simulator()
        array = NandArray(small_geometry, NandTiming(),
                          scheme=SequenceScheme.FPS)
        buffer = WriteBuffer(32)
        ftl = PageFtl(array, buffer, FtlConfig())
        stats = SimStats(page_size=small_geometry.page_size)
        controller = StorageController(sim, array, ftl, buffer, stats,
                                       batching=False)
        request = Request(0.0, RequestKind.WRITE, 0, 4)
        controller.submit(request)
        sim.run()
        assert controller.stats.completed_writes == 1
