"""Shared fixtures for the test suite."""

import pytest

from repro.nand.geometry import NandGeometry


@pytest.fixture
def tiny_geometry():
    """2 channels x 1 chip, 8 blocks of 8 pages — for state tests."""
    return NandGeometry(channels=2, chips_per_channel=1,
                        blocks_per_chip=8, pages_per_block=8,
                        page_size=256)


@pytest.fixture
def small_geometry():
    """2x2 chips, 16 blocks of 16 pages — for small system tests."""
    return NandGeometry(channels=2, chips_per_channel=2,
                        blocks_per_chip=16, pages_per_block=16,
                        page_size=512)


@pytest.fixture
def medium_geometry():
    """4x2 chips, 32 blocks of 32 pages — for integration runs."""
    return NandGeometry(channels=4, chips_per_channel=2,
                        blocks_per_chip=32, pages_per_block=32,
                        page_size=4096)

