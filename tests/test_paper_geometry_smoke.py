"""Smoke tests at the paper's full 16 GB geometry.

The experiments run on a scaled device; these tests check nothing
breaks structurally at the real scale — address arithmetic, FTL
construction (a 3.3M-entry mapping table), and a small write burst
through the full controller.
"""

import pytest

from repro.core.flexftl import FlexFtl
from repro.nand.geometry import PAPER_GEOMETRY
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.queues import RequestKind

from tests.helpers import build_small_system


class TestPaperGeometry:
    def test_shape(self):
        assert PAPER_GEOMETRY.total_chips == 32
        assert PAPER_GEOMETRY.capacity_bytes == 16 * 2 ** 30
        assert PAPER_GEOMETRY.wordlines_per_block == 128

    def test_address_codec_at_extremes(self):
        last = PAPER_GEOMETRY.total_pages - 1
        addr = PAPER_GEOMETRY.address_of(last)
        assert addr.channel == PAPER_GEOMETRY.channels - 1
        assert PAPER_GEOMETRY.ppn(addr) == last

    @pytest.mark.slow
    def test_flexftl_builds_and_serves_writes(self):
        system = build_small_system(FlexFtl, PAPER_GEOMETRY,
                                    buffer_pages=256)
        sim, array, buffer, ftl, controller = system
        # ~3.3M logical pages after over-provisioning
        assert ftl.logical_pages > 3_000_000
        # the paper's quota: 5% of 2M LSB pages
        assert ftl.quota.initial == pytest.approx(
            0.05 * ftl.data_blocks_per_chip * 128 * 32, abs=1)
        ops = [StreamOp(RequestKind.WRITE, i * 1000, 4)
               for i in range(500)]
        host = ClosedLoopHost(sim, controller, [ops])
        host.start()
        sim.run()
        assert controller.stats.completed_writes == 500
        assert array.total_programs == 2000
