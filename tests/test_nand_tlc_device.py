"""Tests for the TLC device model (repro.nand.tlc_device)."""

import pytest

from repro.nand.errors import (
    EccUncorrectableError,
    PageStateError,
    ProgramSequenceError,
)
from repro.nand.tlc import (
    TLC_PROGRAM_TIMES,
    TlcPageType,
    TlcScheme,
    fps_tlc_order,
    rps_tlc_full_order,
    tlc_split_index,
)
from repro.nand.tlc_device import TlcBlock, TlcChip


def program_order(chip, block, order):
    for index in order:
        wordline, ptype = tlc_split_index(index)
        chip.program(block, wordline, ptype)


class TestTlcBlock:
    def test_fresh_block(self):
        block = TlcBlock(0, wordlines=4)
        assert block.pages == 12
        assert block.programmed_count() == 0

    def test_program_and_read_with_data(self):
        block = TlcBlock(0, wordlines=2, store_data=True)
        block.program(0, TlcPageType.LSB, b"x")
        assert block.read(0, TlcPageType.LSB) == b"x"

    def test_double_program_rejected(self):
        block = TlcBlock(0, wordlines=2)
        block.program(0, TlcPageType.LSB)
        with pytest.raises(PageStateError):
            block.program(0, TlcPageType.LSB)

    def test_read_of_erased_page_raises(self):
        block = TlcBlock(0, wordlines=2)
        with pytest.raises(EccUncorrectableError):
            block.read(1, TlcPageType.CSB)

    def test_erase_resets(self):
        block = TlcBlock(0, wordlines=2)
        block.program(0, TlcPageType.LSB)
        block.erase()
        assert block.programmed_count() == 0
        assert block.erase_count == 1
        assert block.program_history == []


class TestTlcChipEnforcement:
    def test_rps_chip_accepts_three_phase_order(self):
        chip = TlcChip(0, blocks=1, wordlines_per_block=4,
                       scheme=TlcScheme.RPS)
        program_order(chip, 0, rps_tlc_full_order(4))
        assert chip.blocks[0].programmed_count() == 12

    def test_fps_chip_rejects_three_phase_order(self):
        chip = TlcChip(0, blocks=1, wordlines_per_block=4,
                       scheme=TlcScheme.FPS)
        with pytest.raises(ProgramSequenceError):
            program_order(chip, 0, rps_tlc_full_order(4))

    def test_both_schemes_accept_staggered_order(self):
        for scheme in (TlcScheme.FPS, TlcScheme.RPS):
            chip = TlcChip(0, blocks=1, wordlines_per_block=4,
                           scheme=scheme)
            program_order(chip, 0, fps_tlc_order(4))
            assert chip.blocks[0].programmed_count() == 12

    def test_pairing_enforced(self):
        chip = TlcChip(0, blocks=1, wordlines_per_block=2,
                       scheme=TlcScheme.RPS)
        with pytest.raises(ProgramSequenceError, match="pairing"):
            chip.program(0, 0, TlcPageType.CSB)

    def test_latencies_by_type(self):
        chip = TlcChip(0, blocks=1, wordlines_per_block=1,
                       scheme=TlcScheme.NONE)
        for ptype in TlcPageType:
            assert chip.program(0, 0, ptype) == \
                TLC_PROGRAM_TIMES[ptype]

    def test_counters(self):
        chip = TlcChip(0, blocks=1, wordlines_per_block=2,
                       scheme=TlcScheme.RPS)
        program_order(chip, 0, rps_tlc_full_order(2))
        chip.read(0, 0, TlcPageType.LSB)
        chip.erase(0)
        assert chip.total_programs == 6
        assert chip.programs[TlcPageType.LSB] == 2
        assert chip.reads == 1
        assert chip.erases == 1

    def test_erase_allows_reuse(self):
        chip = TlcChip(0, blocks=1, wordlines_per_block=2,
                       scheme=TlcScheme.RPS)
        program_order(chip, 0, rps_tlc_full_order(2))
        chip.erase(0)
        program_order(chip, 0, fps_tlc_order(2))
        assert chip.blocks[0].programmed_count() == 6
