"""Tests for power loss during live simulation runs.

The key system-level property (Section 3.3): at *any* instant a power
loss may strike a flexFTL device, every LSB data page it destroys is
still covered by a live parity page, so reboot recovery can
reconstruct it.
"""

import pytest

from repro.core.flexftl import FlexFtl
from repro.ftl.pageftl import PageFtl
from repro.nand.geometry import NandGeometry, PhysicalPageAddress
from repro.nand.page_types import PageType, page_index
from repro.nand.power import apply_power_loss_to_in_flight
from repro.nand.array import NandArray
from repro.nand.sequence import SequenceScheme
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.powerloss import ScheduledPowerLoss, verify_flexftl_protection
from repro.sim.queues import RequestKind

from tests.helpers import build_small_system

GEOMETRY = NandGeometry(channels=2, chips_per_channel=2,
                        blocks_per_chip=16, pages_per_block=16,
                        page_size=512)


def write_stream(count, span, stride=3):
    return [StreamOp(RequestKind.WRITE, (i * stride) % span, 1)
            for i in range(count)]


class TestApplyPowerLossToInFlight:
    def test_interrupted_msb_destroys_itself_and_paired_lsb(self):
        array = NandArray(GEOMETRY, scheme=SequenceScheme.RPS)
        for wordline in range(4):
            array.program(PhysicalPageAddress(
                0, 0, 0, page_index(wordline, PageType.LSB)))
        msb = PhysicalPageAddress(0, 0, 0,
                                  page_index(0, PageType.MSB))
        array.program(msb)  # committed at issue in the DES convention
        destroyed = apply_power_loss_to_in_flight(array, msb)
        assert msb in destroyed
        assert PhysicalPageAddress(
            0, 0, 0, page_index(0, PageType.LSB)) in destroyed

    def test_interrupted_lsb_destroys_only_itself(self):
        array = NandArray(GEOMETRY, scheme=SequenceScheme.RPS)
        lsb = PhysicalPageAddress(0, 0, 0,
                                  page_index(0, PageType.LSB))
        array.program(lsb)
        destroyed = apply_power_loss_to_in_flight(array, lsb)
        assert destroyed == [lsb]


class TestScheduledPowerLoss:
    def test_halts_the_run(self):
        system = build_small_system(PageFtl, GEOMETRY, buffer_pages=32)
        sim, array, buffer, ftl, controller = system
        host = ClosedLoopHost(sim, controller,
                              [write_stream(400, span=600)])
        host.start()
        spo = ScheduledPowerLoss(sim, controller, at_time=0.05)
        sim.run()
        assert spo.fired
        assert sim.now == pytest.approx(0.05)
        # Work remained when the power died.
        assert host.remaining > 0 or not buffer.is_empty

    def test_report_lists_interrupted_programs(self):
        system = build_small_system(PageFtl, GEOMETRY, buffer_pages=32)
        sim, array, buffer, ftl, controller = system
        host = ClosedLoopHost(sim, controller,
                              [write_stream(400, span=600)])
        host.start()
        spo = ScheduledPowerLoss(sim, controller, at_time=0.02)
        sim.run()
        assert spo.report is not None
        # With 4 chips under a saturating write load, programs were in
        # flight at the instant of the cut.
        assert len(spo.report.interrupted_programs) > 0

    def test_cancel_disarms(self):
        system = build_small_system(PageFtl, GEOMETRY, buffer_pages=16)
        sim, _, _, _, controller = system
        host = ClosedLoopHost(sim, controller,
                              [write_stream(20, span=50)])
        host.start()
        spo = ScheduledPowerLoss(sim, controller, at_time=1e9)
        spo.cancel()
        sim.run()
        assert not spo.fired


class TestMultiCutSchedule:
    def test_requires_exactly_one_schedule_form(self):
        system = build_small_system(PageFtl, GEOMETRY, buffer_pages=16)
        sim, _, _, _, controller = system
        with pytest.raises(ValueError):
            ScheduledPowerLoss(sim, controller)
        with pytest.raises(ValueError):
            ScheduledPowerLoss(sim, controller, at_time=0.1,
                               at_times=[0.2])

    def test_cuts_fire_in_sequence_with_recovery_between(self):
        from repro.faults.recovery import recover_after_power_loss

        system = build_small_system(FlexFtl, GEOMETRY, buffer_pages=32)
        sim, array, buffer, ftl, controller = system
        host = ClosedLoopHost(sim, controller,
                              [write_stream(900, span=500)])
        host.start()
        spo = ScheduledPowerLoss(sim, controller,
                                 at_times=[0.01, 0.02])
        sim.run()
        assert len(spo.reports) == 1
        assert sim.now == pytest.approx(0.01)
        assert not spo.armed  # next cut not armed until asked

        recovery = recover_after_power_loss(controller, spo.reports[0])
        assert recovery.time == pytest.approx(0.01)
        assert host.resume() == 1
        assert spo.arm_next()
        assert spo.armed
        sim.run()
        assert len(spo.reports) == 2
        assert spo.reports[1].time == pytest.approx(0.02)
        assert not spo.arm_next()  # schedule exhausted

    def test_clean_shutdown_leaves_no_armed_event(self):
        """A run that finishes before the cut must disarm cleanly."""
        system = build_small_system(PageFtl, GEOMETRY, buffer_pages=16)
        sim, _, _, _, controller = system
        host = ClosedLoopHost(sim, controller,
                              [write_stream(20, span=50)])
        host.start()
        spo = ScheduledPowerLoss(sim, controller,
                                 at_times=[1e9, 2e9])
        sim.run(until=1.0)  # workload drains long before the cut
        assert not spo.fired
        assert spo.armed
        spo.cancel()
        assert not spo.armed
        assert spo._event is None or spo._event.cancelled
        assert not spo.arm_next()  # cancel cleared the whole schedule
        sim.run()
        assert not spo.fired


class TestFlexFtlProtectionInvariant:
    @pytest.mark.parametrize("cut_ms", [5, 11, 23, 47, 95, 190])
    def test_destroyed_lsb_pages_always_have_live_parity(self, cut_ms):
        """Fire power-offs at many instants; the Section 3.3 guarantee
        must hold at every one of them."""
        system = build_small_system(FlexFtl, GEOMETRY, buffer_pages=32)
        sim, array, buffer, ftl, controller = system
        # Mixed load with overwrites so fast/slow phases and GC all run.
        streams = [write_stream(700, span=500, stride=s)
                   for s in (3, 7)]
        host = ClosedLoopHost(sim, controller, streams)
        host.start()
        spo = ScheduledPowerLoss(sim, controller,
                                 at_time=cut_ms / 1000.0)
        sim.run()
        if not spo.fired:
            pytest.skip("run finished before the scheduled cut")
        violations = verify_flexftl_protection(ftl, spo.report)
        assert violations == []

    def test_protection_check_flags_missing_parity(self):
        """Sanity: the checker does fail when parity is absent."""
        system = build_small_system(FlexFtl, GEOMETRY, buffer_pages=32)
        sim, array, buffer, ftl, controller = system
        host = ClosedLoopHost(sim, controller,
                              [write_stream(700, span=500)])
        host.start()
        spo = ScheduledPowerLoss(sim, controller, at_time=0.04)
        sim.run()
        if not spo.fired or not spo.report.collateral_lsb_pages:
            pytest.skip("no LSB page destroyed at this cut point")
        # Forcibly drop every live parity page, then re-verify.
        for state in ftl.chips:
            if state.backup is not None:
                for owner in list(state.backup._live):
                    state.backup.invalidate(owner)
        violations = verify_flexftl_protection(ftl, spo.report)
        assert violations
