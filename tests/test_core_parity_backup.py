"""Tests for repro.core.parity_backup, including property tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parity_backup import (
    ParityAccumulator,
    estimate_reboot_read_overhead,
    recover_active_slow_block,
    xor_pages,
)
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry, PhysicalPageAddress
from repro.nand.page_types import PageType, page_index
from repro.nand.power import simulate_power_loss_during_msb
from repro.nand.sequence import SequenceScheme

PAGE = 64


def make_array(wordlines=4, blocks=2):
    geometry = NandGeometry(channels=1, chips_per_channel=1,
                            blocks_per_chip=blocks,
                            pages_per_block=2 * wordlines,
                            page_size=PAGE)
    return NandArray(geometry, scheme=SequenceScheme.RPS, store_data=True)


class TestParityAccumulator:
    def test_xor_identity(self):
        acc = ParityAccumulator(4)
        acc.add(b"\x0f\x0f")
        acc.add(b"\x0f\x0f")
        assert acc.value() == b"\x00\x00\x00\x00"

    def test_short_pages_zero_padded(self):
        acc = ParityAccumulator(4)
        acc.add(b"\xff")
        assert acc.value() == b"\xff\x00\x00\x00"

    def test_count_and_reset(self):
        acc = ParityAccumulator(4)
        acc.add(b"a")
        acc.add(b"b")
        assert acc.count == 2
        acc.reset()
        assert acc.count == 0
        assert acc.value() == b"\x00" * 4

    def test_oversized_payload_rejected(self):
        acc = ParityAccumulator(2)
        with pytest.raises(ValueError):
            acc.add(b"abc")

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            ParityAccumulator(0)

    @given(st.lists(st.binary(min_size=0, max_size=PAGE), min_size=1,
                    max_size=16))
    @settings(max_examples=60, deadline=None)
    def test_any_page_recoverable_from_parity_of_rest(self, pages):
        """XOR parity recovers any single missing page."""
        full = ParityAccumulator(PAGE)
        for page in pages:
            full.add(page)
        parity = full.value()
        missing_index = len(pages) // 2
        partial = ParityAccumulator(PAGE)
        for index, page in enumerate(pages):
            if index != missing_index:
                partial.add(page)
        recovered = xor_pages(partial.value(), parity, PAGE)
        expected = pages[missing_index].ljust(PAGE, b"\x00")
        assert recovered == expected


class TestRecovery:
    def write_block_2po(self, array, payloads, msb_count):
        acc = ParityAccumulator(PAGE)
        for wordline, payload in enumerate(payloads):
            array.program(PhysicalPageAddress(
                0, 0, 0, page_index(wordline, PageType.LSB)), payload)
            acc.add(payload)
        for wordline in range(msb_count):
            array.program(PhysicalPageAddress(
                0, 0, 0, page_index(wordline, PageType.MSB)), b"msb")
        return acc.value()

    def test_recovery_without_loss_is_clean(self):
        array = make_array(wordlines=4)
        payloads = [bytes([i]) * PAGE for i in range(4)]
        parity = self.write_block_2po(array, payloads, msb_count=2)
        report = recover_active_slow_block(array, 0, 0, 0, parity)
        assert report.success
        assert not report.data_was_lost
        assert report.lsb_reads == 4

    def test_recovery_reconstructs_lost_page(self):
        array = make_array(wordlines=4)
        payloads = [bytes([i + 1]) * PAGE for i in range(4)]
        parity = self.write_block_2po(array, payloads, msb_count=2)
        simulate_power_loss_during_msb(array, PhysicalPageAddress(
            0, 0, 0, page_index(2, PageType.MSB)))
        report = recover_active_slow_block(array, 0, 0, 0, parity)
        assert report.success
        assert report.lost_wordlines == [2]
        assert report.recovered_wordline == 2
        assert report.recovered_data == payloads[2]
        assert report.lsb_reads == 3

    def test_two_lost_pages_unrecoverable(self):
        array = make_array(wordlines=4)
        payloads = [bytes([i]) * PAGE for i in range(4)]
        parity = self.write_block_2po(array, payloads, msb_count=0)
        # Two destroyed LSB pages exceed single-parity protection.
        chip = array.chips[0]
        chip.blocks[0].destroy_page(1, PageType.LSB)
        chip.blocks[0].destroy_page(2, PageType.LSB)
        report = recover_active_slow_block(array, 0, 0, 0, parity)
        assert not report.success
        assert report.lost_wordlines == [1, 2]

    def test_requires_data_bearing_array(self):
        geometry = NandGeometry(channels=1, chips_per_channel=1,
                                blocks_per_chip=1, pages_per_block=4,
                                page_size=PAGE)
        array = NandArray(geometry, scheme=SequenceScheme.RPS,
                          store_data=False)
        with pytest.raises(ValueError):
            recover_active_slow_block(array, 0, 0, 0, b"")

    @given(st.integers(min_value=0, max_value=7), st.integers())
    @settings(max_examples=30, deadline=None)
    def test_recovery_roundtrip_any_victim(self, victim, seed):
        """Property: whichever MSB program the power-off interrupts,
        the paired LSB page is reconstructed byte for byte."""
        rng = random.Random(seed)
        array = make_array(wordlines=8)
        payloads = [bytes(rng.randrange(256) for _ in range(PAGE))
                    for _ in range(8)]
        parity = self.write_block_2po(array, payloads, msb_count=victim)
        simulate_power_loss_during_msb(array, PhysicalPageAddress(
            0, 0, 0, page_index(victim, PageType.MSB)))
        report = recover_active_slow_block(array, 0, 0, 0, parity)
        assert report.success
        assert report.recovered_data == payloads[victim]


class TestRebootEstimate:
    def test_paper_example_is_81_92_ms(self):
        overhead = estimate_reboot_read_overhead(
            chips=16, active_blocks_per_chip=2, lsb_pages_per_block=64,
            t_read=40e-6)
        assert overhead == pytest.approx(81.92e-3)

    def test_scales_linearly(self):
        small = estimate_reboot_read_overhead(8, 2, 64)
        large = estimate_reboot_read_overhead(16, 2, 64)
        assert large == pytest.approx(2 * small)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_reboot_read_overhead(0, 2, 64)
        with pytest.raises(ValueError):
            estimate_reboot_read_overhead(8, 2, 64, t_read=0.0)
