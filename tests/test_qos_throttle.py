"""Tests for token-bucket rate limiting and the admission gate."""

import pytest

from repro.qos.throttle import AdmissionGate, TokenBucket


class FakeController:
    """Just enough controller surface for the gate: a backlog count."""

    def __init__(self):
        self.pending_admissions = 0


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=8)
        with pytest.raises(ValueError):
            TokenBucket(rate=100.0, burst=0)

    def test_starts_full(self):
        bucket = TokenBucket(rate=100.0, burst=8)
        assert bucket.tokens == 8.0
        assert bucket.wait_time(8, now=0.0) == 0.0

    def test_consume_then_wait(self):
        bucket = TokenBucket(rate=100.0, burst=8)
        bucket.consume(8, now=0.0)
        assert bucket.tokens == 0.0
        # 4 pages at 100 pages/s: ready 0.04 s later.
        assert bucket.wait_time(4, now=0.0) == pytest.approx(0.04)
        assert bucket.wait_time(4, now=0.04) == 0.0

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=8)
        bucket.consume(8, now=0.0)
        bucket.wait_time(1, now=100.0)  # long idle: refill saturates
        assert bucket.tokens == 8.0

    def test_oversized_command_waits_for_full_bucket(self):
        bucket = TokenBucket(rate=100.0, burst=8)
        # 20 pages > burst 8: admitted at a full bucket, not never.
        assert bucket.wait_time(20, now=0.0) == 0.0
        bucket.consume(20, now=0.0)
        assert bucket.tokens == -12.0
        # The overdraft is repaid before anything else is admitted.
        assert bucket.wait_time(1, now=0.0) == pytest.approx(0.13)

    def test_throttled_decisions_counted(self):
        bucket = TokenBucket(rate=100.0, burst=4)
        assert bucket.throttled_decisions == 0
        bucket.consume(4, now=0.0)
        bucket.wait_time(4, now=0.0)
        bucket.wait_time(4, now=0.0)
        assert bucket.throttled_decisions == 2


class TestAdmissionGate:
    def test_validation(self):
        controller = FakeController()
        with pytest.raises(ValueError):
            AdmissionGate(controller, max_outstanding=0)
        with pytest.raises(ValueError):
            AdmissionGate(controller, max_pending_admissions=-1)

    def test_outstanding_bound(self):
        gate = AdmissionGate(FakeController(), max_outstanding=2)
        assert gate.can_admit()
        gate.note_dispatch()
        gate.note_dispatch()
        assert not gate.can_admit()
        gate.note_complete()
        assert gate.can_admit()

    def test_unbounded_when_none(self):
        gate = AdmissionGate(FakeController(), max_outstanding=None)
        for _ in range(100):
            gate.note_dispatch()
        assert gate.can_admit()

    def test_pending_admissions_bound(self):
        controller = FakeController()
        gate = AdmissionGate(controller, max_outstanding=None,
                             max_pending_admissions=4)
        controller.pending_admissions = 4
        assert not gate.can_admit()
        controller.pending_admissions = 3
        assert gate.can_admit()

    def test_blocked_decisions_counted(self):
        gate = AdmissionGate(FakeController(), max_outstanding=1)
        gate.note_dispatch()
        gate.can_admit()
        gate.can_admit()
        assert gate.blocked_decisions == 2

    def test_completion_underflow_raises(self):
        gate = AdmissionGate(FakeController())
        with pytest.raises(RuntimeError):
            gate.note_complete()
