"""Tests for in-line fault recovery: re-drive, read-retry ladder,
and read-only graceful degradation."""

import pytest

from repro.core.flexftl import FlexFtl
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.ftl.base import FtlConfig
from repro.ftl.pageftl import PageFtl
from repro.nand.errors import ReadOnlyDeviceError
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.queues import (
    REQUEST_FAILED,
    REQUEST_OK,
    REQUEST_RECOVERED,
    Request,
    RequestKind,
)
from repro.nand.geometry import NandGeometry

from tests.helpers import build_small_system

GEOMETRY = NandGeometry(channels=2, chips_per_channel=2,
                        blocks_per_chip=16, pages_per_block=16,
                        page_size=512)
SPAN = 64


def _written_system(ftl_cls, **config_kwargs):
    """A system with SPAN logical pages written and settled."""
    config = FtlConfig(bg_gc_enabled=False, **config_kwargs)
    system = build_small_system(ftl_cls, GEOMETRY, buffer_pages=16,
                                ftl_config=config)
    sim, array, buffer, ftl, controller = system
    host = ClosedLoopHost(sim, controller, [
        [StreamOp(RequestKind.WRITE, lpn, 1) for lpn in range(SPAN)]
    ])
    host.start()
    sim.run()
    return sim, array, buffer, ftl, controller


def _pick_lpn(ftl, buffer, covered):
    """A flushed lpn whose block does (not) have live parity."""
    for lpn in range(SPAN):
        if buffer.contains(lpn):
            continue
        addr = ftl.mapping.lookup_address(lpn)
        if addr is None:
            continue
        chip_id = ftl.geometry.chip_id(addr.channel, addr.chip)
        if ftl.parity_covers(chip_id, addr) == covered:
            return lpn, chip_id
    pytest.skip(f"no settled lpn with parity_covers={covered}")


def _faulted_read(sim, controller, ftl, buffer, severity, covered):
    """Submit one read whose first NAND access hits a read fault."""
    lpn, chip_id = _pick_lpn(ftl, buffer, covered)
    plan = FaultPlan(events=(
        FaultEvent("read_fault", chip=chip_id, op_index=0,
                   severity=severity),))
    controller.attach_fault_injector(
        FaultInjector(plan, page_size=GEOMETRY.page_size))
    request = Request(sim.now, RequestKind.READ, lpn, 1)
    submitted = sim.now
    controller.submit(request)
    sim.run()
    # Measure to the request's completion, not to simulation quiescence
    # — reconstruction can queue follow-up relocation work that runs
    # after the host read is answered.
    return request, request.completed_at - submitted


class TestProgramFailureRedrive:
    def test_redrive_preserves_every_logical_page(self):
        config = FtlConfig(spare_blocks_per_chip=2)
        system = build_small_system(FlexFtl, GEOMETRY, buffer_pages=16,
                                    ftl_config=config)
        sim, array, buffer, ftl, controller = system
        plan = FaultPlan(events=(
            FaultEvent("program_fail", chip=0, op_index=10),))
        controller.attach_fault_injector(
            FaultInjector(plan, page_size=GEOMETRY.page_size))
        host = ClosedLoopHost(sim, controller, [
            [StreamOp(RequestKind.WRITE, lpn, 1) for lpn in range(SPAN)]
        ])
        host.start()
        sim.run()
        faults = controller.stats.faults
        assert faults.program_failures == 1
        assert faults.redriven_writes >= 1
        assert faults.lost_pages == 0
        # Every logical page is still resolvable, and its physical
        # page really is programmed silicon.
        for lpn in range(SPAN):
            if buffer.contains(lpn):
                continue
            addr = ftl.mapping.lookup_address(lpn)
            assert addr is not None, f"lpn {lpn} lost its mapping"
            assert array.is_programmed(addr), \
                f"lpn {lpn} maps to an unprogrammed page"


class TestReadRetryLadder:
    def test_transient_fault_reread_only(self):
        sim, array, buffer, ftl, controller = _written_system(PageFtl)
        request, _ = _faulted_read(sim, controller, ftl, buffer,
                                   "transient", covered=False)
        faults = controller.stats.faults
        assert faults.read_faults == 1
        assert faults.read_retries == 1
        assert faults.ecc_escalations == 0
        assert faults.lost_pages == 0
        assert request.status == REQUEST_RECOVERED

    def test_ecc_fault_escalates_after_reread(self):
        sim, array, buffer, ftl, controller = _written_system(PageFtl)
        request, _ = _faulted_read(sim, controller, ftl, buffer,
                                   "ecc", covered=False)
        faults = controller.stats.faults
        assert faults.read_retries == 1
        assert faults.ecc_escalations == 1
        assert faults.parity_reconstructions == 0
        assert faults.lost_pages == 0
        assert request.status == REQUEST_RECOVERED

    def test_uncorrectable_without_parity_reports_loss(self):
        sim, array, buffer, ftl, controller = _written_system(PageFtl)
        request, _ = _faulted_read(sim, controller, ftl, buffer,
                                   "uncorrectable", covered=False)
        faults = controller.stats.faults
        assert faults.ecc_escalations == 1
        assert faults.parity_reconstructions == 0
        assert faults.lost_pages == 1
        assert request.status == REQUEST_FAILED

    def test_uncorrectable_with_parity_reconstructs(self):
        sim, array, buffer, ftl, controller = _written_system(FlexFtl)
        request, _ = _faulted_read(sim, controller, ftl, buffer,
                                   "uncorrectable", covered=True)
        faults = controller.stats.faults
        assert faults.ecc_escalations == 1
        assert faults.parity_reconstructions == 1
        assert faults.reconstructed_pages == 1
        assert faults.lost_pages == 0
        assert request.status == REQUEST_RECOVERED

    def test_ladder_rungs_cost_increasing_latency(self):
        """Each rung adds reads: re-read < +escalation < +parity XOR."""
        latencies = {}
        for severity, covered in [(None, False), ("transient", False),
                                  ("ecc", False),
                                  ("uncorrectable", True)]:
            sim, array, buffer, ftl, controller = \
                _written_system(FlexFtl)
            if severity is None:
                lpn, _ = _pick_lpn(ftl, buffer, covered=True)
                request = Request(sim.now, RequestKind.READ, lpn, 1)
                start = sim.now
                controller.submit(request)
                sim.run()
                latencies[None] = sim.now - start
            else:
                _, elapsed = _faulted_read(sim, controller, ftl,
                                           buffer, severity, covered)
                latencies[severity] = elapsed
        assert latencies[None] < latencies["transient"] \
            < latencies["ecc"] < latencies["uncorrectable"]


class TestLadderTimingItemization:
    """Exact per-rung latency accounting of the read-retry ladder.

    Each rung must charge exactly its own page reads — one re-read for
    a transient excursion, plus the escalated decode's extra strobes,
    plus the parity XOR's per-word-line reads — and the same counts
    must land in ``FaultStats.ladder_reads`` so the latency is
    auditable from the stats alone.  The clean baseline comes from an
    identically built system reading the same lpn (runs are
    deterministic, so the difference isolates the ladder).
    """

    def _clean_elapsed(self, ftl_cls, covered):
        sim, array, buffer, ftl, controller = _written_system(ftl_cls)
        lpn, _ = _pick_lpn(ftl, buffer, covered)
        request = Request(sim.now, RequestKind.READ, lpn, 1)
        start = sim.now
        controller.submit(request)
        sim.run()
        assert request.status == REQUEST_OK
        return request.completed_at - start

    def test_transient_costs_exactly_one_reread(self):
        clean = self._clean_elapsed(PageFtl, covered=False)
        sim, array, buffer, ftl, controller = _written_system(PageFtl)
        request, elapsed = _faulted_read(sim, controller, ftl, buffer,
                                         "transient", covered=False)
        t_read = controller.timing.t_read
        assert elapsed == pytest.approx(clean + t_read, rel=1e-12)
        assert controller.stats.faults.ladder_reads == 1
        assert request.status == REQUEST_RECOVERED

    def test_ecc_escalation_adds_exactly_its_strobes(self):
        clean = self._clean_elapsed(PageFtl, covered=False)
        sim, array, buffer, ftl, controller = _written_system(PageFtl)
        request, elapsed = _faulted_read(sim, controller, ftl, buffer,
                                         "ecc", covered=False)
        t_read = controller.timing.t_read
        strobes = controller._injector.plan.ecc_escalation_reads
        assert elapsed == pytest.approx(
            clean + (1 + strobes) * t_read, rel=1e-12)
        assert controller.stats.faults.ladder_reads == 1 + strobes

    def test_parity_reconstruction_adds_exactly_wordline_reads(self):
        clean = self._clean_elapsed(FlexFtl, covered=True)
        sim, array, buffer, ftl, controller = _written_system(FlexFtl)
        request, elapsed = _faulted_read(sim, controller, ftl, buffer,
                                         "uncorrectable", covered=True)
        t_read = controller.timing.t_read
        strobes = controller._injector.plan.ecc_escalation_reads
        assert elapsed == pytest.approx(
            clean + (1 + strobes + ftl.wordlines) * t_read, rel=1e-12)
        assert controller.stats.faults.ladder_reads == \
            1 + strobes + ftl.wordlines

    def test_uncovered_loss_charges_no_parity_reads(self):
        clean = self._clean_elapsed(PageFtl, covered=False)
        sim, array, buffer, ftl, controller = _written_system(PageFtl)
        request, elapsed = _faulted_read(sim, controller, ftl, buffer,
                                         "uncorrectable", covered=False)
        t_read = controller.timing.t_read
        strobes = controller._injector.plan.ecc_escalation_reads
        # The ladder gives up after the escalated decode: data loss
        # must not be billed for a reconstruction that never ran.
        assert elapsed == pytest.approx(
            clean + (1 + strobes) * t_read, rel=1e-12)
        assert controller.stats.faults.ladder_reads == 1 + strobes
        assert request.status == REQUEST_FAILED


class TestGracefulDegradation:
    def _degraded_system(self):
        config = FtlConfig(bg_gc_enabled=False,
                           spare_blocks_per_chip=0)
        system = build_small_system(PageFtl, GEOMETRY, buffer_pages=16,
                                    ftl_config=config)
        sim, array, buffer, ftl, controller = system
        plan = FaultPlan(events=(
            FaultEvent("program_fail", chip=0, op_index=10),))
        controller.attach_fault_injector(
            FaultInjector(plan, page_size=GEOMETRY.page_size))
        host = ClosedLoopHost(sim, controller, [
            [StreamOp(RequestKind.WRITE, lpn, 1) for lpn in range(SPAN)]
        ])
        host.start()
        sim.run()
        return sim, buffer, ftl, controller

    def test_spare_exhaustion_flips_read_only(self):
        sim, buffer, ftl, controller = self._degraded_system()
        assert ftl.degraded
        assert controller.read_only
        assert controller.stats.faults.degraded_mode

    def test_writes_rejected_with_typed_error(self):
        sim, buffer, ftl, controller = self._degraded_system()
        request = Request(sim.now, RequestKind.WRITE, 0, 1)
        controller.submit(request)
        sim.run()
        assert request.status == REQUEST_FAILED
        assert isinstance(request.error, ReadOnlyDeviceError)
        assert controller.stats.faults.writes_rejected >= 1

    def test_reads_still_served_in_degraded_mode(self):
        sim, buffer, ftl, controller = self._degraded_system()
        lpn = next(lpn for lpn in range(SPAN)
                   if buffer.contains(lpn)
                   or ftl.mapping.lookup(lpn) is not None)
        request = Request(sim.now, RequestKind.READ, lpn, 1)
        controller.submit(request)
        sim.run()
        assert request.status == REQUEST_OK
        assert request.completed_at is not None
