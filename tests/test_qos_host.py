"""Tests for the multi-tenant QoS front-end host."""

import pytest

from repro.core.flexftl import FlexFtl
from repro.ftl.pageftl import PageFtl
from repro.qos.arbiter import FifoArbiter
from repro.qos.host import MultiTenantHost, TenantSpec
from repro.sim.host import StreamOp
from repro.sim.queues import RequestKind

from tests.helpers import build_small_system


def writes(lpns, npages=1, think=0.0):
    return [StreamOp(RequestKind.WRITE, lpn, npages, think_after=think)
            for lpn in lpns]


def two_tenants(span, ops_each=6):
    return [
        TenantSpec.make("a", [writes(range(ops_each))]),
        TenantSpec.make("b", [writes(range(span // 2,
                                           span // 2 + ops_each))]),
    ]


class TestTenantSpec:
    def test_make_normalises_streams(self):
        spec = TenantSpec.make("t", [writes([0, 1]), writes([2])])
        assert isinstance(spec.streams, tuple)
        assert spec.total_ops == 3

    def test_slo_target_projection(self):
        spec = TenantSpec.make("t", [], read_slo=1e-3)
        target = spec.slo_target()
        assert target.read_latency == 1e-3
        assert target.write_latency is None


class TestConstruction:
    def test_needs_tenants(self, small_geometry):
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry)
        with pytest.raises(ValueError):
            MultiTenantHost(sim, controller, [])

    def test_duplicate_names_rejected(self, small_geometry):
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry)
        specs = [TenantSpec.make("t", []), TenantSpec.make("t", [])]
        with pytest.raises(ValueError):
            MultiTenantHost(sim, controller, specs)

    def test_named_arbiter_gets_weights(self, small_geometry):
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry)
        specs = [TenantSpec.make("a", [], weight=2.0),
                 TenantSpec.make("b", [], weight=1.0)]
        host = MultiTenantHost(sim, controller, specs, arbiter="wrr")
        assert host.arbiter.name == "wrr"
        assert host.arbiter.weights == [2.0, 1.0]

    def test_arbiter_instance_accepted(self, small_geometry):
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry)
        arbiter = FifoArbiter(["a"])
        specs = [TenantSpec.make("a", [])]
        host = MultiTenantHost(sim, controller, specs, arbiter=arbiter)
        assert host.arbiter is arbiter

    def test_start_twice_rejected(self, small_geometry):
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry)
        host = MultiTenantHost(sim, controller,
                               [TenantSpec.make("a", [])])
        host.start()
        with pytest.raises(RuntimeError):
            host.start()


class TestDispatch:
    @pytest.mark.parametrize("ftl_cls", [PageFtl, FlexFtl])
    @pytest.mark.parametrize("arbiter", ["fifo", "rr", "wrr", "drr"])
    def test_all_requests_complete(self, small_geometry, ftl_cls,
                                   arbiter):
        sim, _, _, ftl, controller = build_small_system(
            ftl_cls, small_geometry, buffer_pages=8)
        tenants = two_tenants(ftl.logical_pages)
        host = MultiTenantHost(sim, controller, tenants,
                               arbiter=arbiter, max_outstanding=2)
        host.start()
        sim.run()
        assert host.remaining == 0
        assert host.queued == 0
        assert host.issued == 12
        assert host.gate.outstanding == 0
        assert controller.stats.completed_writes == 12

    def test_per_tenant_accounting(self, small_geometry):
        sim, _, _, ftl, controller = build_small_system(
            PageFtl, small_geometry, buffer_pages=8)
        tenants = two_tenants(ftl.logical_pages)
        host = MultiTenantHost(sim, controller, tenants)
        host.start()
        sim.run()
        summary = host.accountant.summary()
        assert summary["a"]["completed_writes"] == 6
        assert summary["b"]["completed_writes"] == 6

    def test_gate_keeps_backlog_in_queues(self, small_geometry):
        # With a tight gate, the submission queues must hold real
        # backlog at some point — that is what gives the arbiter
        # something to decide.
        sim, _, _, ftl, controller = build_small_system(
            PageFtl, small_geometry, buffer_pages=4)
        tenants = two_tenants(ftl.logical_pages, ops_each=10)
        host = MultiTenantHost(sim, controller, tenants,
                               max_outstanding=1)
        host.start()
        sim.run()
        assert host.gate.blocked_decisions > 0
        assert max(q.max_depth_seen for q in host.queues) >= 1

    def test_token_bucket_paces_issue(self, small_geometry):
        # 1 page per 10 ms: 8 writes take >= 70 ms of simulated time,
        # orders of magnitude beyond the raw device latency.
        sim, _, _, _, controller = build_small_system(
            PageFtl, small_geometry, buffer_pages=8)
        spec = TenantSpec.make("slow", [writes(range(8))],
                               rate_pages_per_sec=100.0,
                               burst_pages=1.0)
        host = MultiTenantHost(sim, controller, [spec])
        host.start()
        sim.run()
        assert controller.stats.completed_writes == 8
        assert sim.now >= 0.07
        assert host.buckets[0].throttled_decisions > 0

    def test_unthrottled_tenant_unaffected_by_peer_bucket(
            self, small_geometry):
        sim, _, _, ftl, controller = build_small_system(
            PageFtl, small_geometry, buffer_pages=8)
        half = ftl.logical_pages // 2
        specs = [
            TenantSpec.make("slow", [writes(range(8))],
                            rate_pages_per_sec=100.0, burst_pages=1.0),
            TenantSpec.make("fast", [writes(range(half, half + 8))]),
        ]
        host = MultiTenantHost(sim, controller, specs, arbiter="rr")
        host.start()
        sim.run()
        fast = host.accountant.accounts["fast"]
        slow = host.accountant.accounts["slow"]
        assert fast.last_completion < slow.last_completion

    def test_deterministic_across_runs(self, small_geometry):
        def run_once():
            sim, _, _, ftl, controller = build_small_system(
                PageFtl, small_geometry, buffer_pages=4)
            host = MultiTenantHost(
                sim, controller, two_tenants(ftl.logical_pages),
                arbiter="drr", max_outstanding=2)
            host.start()
            sim.run()
            return (sim.now, sim.processed,
                    host.accountant.accounts["a"].write_latencies)

        assert run_once() == run_once()
