"""The trace summary must reconcile *exactly* with run statistics.

``repro trace summary`` is only trustworthy if its aggregates agree
with the system's independent bookkeeping — ``SimStats``, the FTL's
counters and the NAND array's totals.  These tests drive real
simulations and assert equality, not approximation: one page of
disagreement means the trace (or the summary) is lying.
"""

import json
import subprocess
import sys

from repro.core.flexftl import FlexFtl
from repro.experiments.runner import ExperimentConfig, run_workload
from repro.nand.geometry import NandGeometry
from repro.observability.summary import (summarize_jsonl,
                                         summarize_tracer)
from repro.observability.tracer import Tracer
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.queues import RequestKind

from tests.helpers import build_small_system

GEOMETRY = NandGeometry(channels=2, chips_per_channel=2,
                        blocks_per_chip=16, pages_per_block=16,
                        page_size=512)
SPAN = 140


def mixed_stream():
    """Writes with overwrite churn plus reads (some buffer hits)."""
    ops = [StreamOp(RequestKind.WRITE, lpn, 1) for lpn in range(SPAN)]
    ops.extend(StreamOp(RequestKind.WRITE, lpn, 1)
               for lpn in range(0, SPAN, 2))
    ops.extend(StreamOp(RequestKind.READ, lpn, 1)
               for lpn in range(0, SPAN, 3))
    ops.extend(StreamOp(RequestKind.WRITE, lpn, 1)
               for lpn in range(0, SPAN, 5))
    ops.extend(StreamOp(RequestKind.READ, lpn, 1)
               for lpn in range(SPAN - 10, SPAN))
    return ops


def traced_run():
    system = build_small_system(FlexFtl, GEOMETRY, buffer_pages=16)
    sim, array, buffer, ftl, controller = system
    tracer = Tracer()
    tracer.install(controller)
    host = ClosedLoopHost(sim, controller, [mixed_stream()])
    host.start()
    sim.run()
    tracer.detach()
    assert buffer.is_empty
    return tracer, system


class TestReconciliation:
    def test_op_counts_match_every_bookkeeper(self):
        tracer, (sim, array, buffer, ftl, controller) = traced_run()
        summary = summarize_tracer(tracer)
        counters = ftl.counters()
        stats = controller.stats

        # programs: trace == array == FTL attribution
        assert summary.ops(kind="program") == array.total_programs
        assert summary.ops(kind="program", tag="host") \
            == counters["host_programs"]
        assert summary.ops(kind="program", tag="gc") \
            == counters["gc_programs"]
        assert summary.ops(kind="program", tag="backup") \
            == counters["backup_programs"]

        # erases: trace == array == FTL
        assert summary.ops(kind="erase") == array.total_erases \
            == counters["erases"]

        # reads that reached the NAND: trace == array (GC relocations
        # read via direct array access, so host reads are the total)
        assert summary.ops(kind="read") == array.total_reads \
            == summary.ops(kind="read", tag="host")

        # allocation decisions: one per host page on silicon, and the
        # LSB/MSB split sums to the total
        assert summary.allocs() == counters["host_programs"]
        assert summary.allocs(ptype="lsb") \
            + summary.allocs(ptype="msb") == summary.allocs()

        # SimStats host admission: every admitted page either coalesced
        # in the buffer or became exactly one host program; with the
        # buffer drained and distinct in-flight lpns they are equal
        assert stats.written_pages >= counters["host_programs"]

    def test_unique_lpn_stream_reconciles_with_simstats_exactly(self):
        system = build_small_system(FlexFtl, GEOMETRY, buffer_pages=16)
        sim, array, buffer, ftl, controller = system
        tracer = Tracer().install(controller)
        # distinct lpns with no rewrites: admission == host programs
        host = ClosedLoopHost(sim, controller, [
            [StreamOp(RequestKind.WRITE, lpn, 1) for lpn in range(SPAN)]
        ])
        host.start()
        sim.run()
        tracer.detach()
        summary = summarize_tracer(tracer)
        assert buffer.is_empty
        assert summary.allocs() == controller.stats.written_pages
        assert summary.ops(kind="program", tag="host") \
            == controller.stats.written_pages

    def test_phase_events_match_run_result(self):
        config = ExperimentConfig(geometry=GEOMETRY, buffer_pages=16,
                                  track_history=False)
        tracer = Tracer()
        result = run_workload(
            ftl_name="flexFTL",
            streams=[mixed_stream()],
            config=config,
            tracer=tracer,
        )
        summary = summarize_tracer(tracer)
        # the profiler phases (warmup + measured) cover every kernel
        # event the run retired
        assert [phase["name"] for phase in summary.phases] \
            == ["warmup", "measured"]
        assert summary.phase_events() == result.events
        # measured-phase host programs agree with the run's counters
        assert summary.ops(phase="measured", kind="program",
                           tag="host") \
            == result.counters["host_programs"]
        assert summary.ops(phase="measured", kind="erase") \
            == result.counters["erases"]
        # the metrics registry snapshot rode along on the stats
        assert result.stats.metrics is not None
        assert "metrics" in result.stats.to_dict()


class TestSummaryCli:
    def test_cli_summary_agrees_with_library(self, tmp_path):
        tracer, _ = traced_run()
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        expected = summarize_jsonl(str(path)).to_dict()
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "trace", "summary",
             str(path), "--json"],
            capture_output=True, text=True, check=True,
        )
        assert json.loads(proc.stdout) == expected

    def test_cli_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ev":"trace.meta","schema":999}\n')
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "trace", "summary",
             str(path)],
            capture_output=True, text=True,
        )
        assert proc.returncode != 0