"""Byte-identity guard for the PR-2 core optimisations.

The optimised kernel/NAND/FTL hot paths must not change a single
simulation outcome.  The golden file was produced by the pre-PR core
via ``python -m repro fig8 --scale 0.05 --workloads Varmail,OLTP
--no-cache --json``; the same invocation must keep reproducing it
byte for byte, both with and without program-history tracking.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.engine import EngineOptions
from repro.experiments.fig8 import run_fig8
from repro.experiments.runner import ExperimentConfig

GOLDEN = Path(__file__).parent / "data" / "golden_fig8_scale005.json"


def _fig8_json(config=None) -> str:
    """The exact text the fig8 CLI prints for the golden invocation."""
    result = run_fig8(workloads=["Varmail", "OLTP"], scale=0.05,
                      utilization=0.75, seed=1, config=config,
                      engine=EngineOptions())
    return json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"


@pytest.mark.slow
def test_fig8_matches_pre_optimization_golden():
    assert _fig8_json() == GOLDEN.read_text()


@pytest.mark.slow
def test_history_opt_out_is_outcome_invariant():
    """``track_history=False`` (the perfbench fast mode) must change
    what the device remembers, never what the simulation computes."""
    fast = ExperimentConfig(track_history=False)
    assert _fig8_json(config=fast) == GOLDEN.read_text()


@pytest.mark.slow
@pytest.mark.parametrize("kernel,stepping", [
    ("heap", "event"),
    ("calendar", "event"),
    ("calendar", "batch"),
    ("calendar", "vector"),
    ("heap", "vector"),
])
def test_kernel_and_stepping_modes_match_golden(kernel, stepping):
    """Every kernel x stepping combination reproduces the pre-calendar
    golden byte for byte — the PR-7 equivalence contract."""
    config = ExperimentConfig(kernel=kernel, stepping=stepping)
    assert _fig8_json(config=config) == GOLDEN.read_text()


@pytest.mark.slow
@pytest.mark.parametrize("multiplier", [1, 4, 16])
def test_sweep_geometries_kernel_equivalence(multiplier):
    """Calendar and heap kernels produce identical results at every
    ``--scale-sweep`` geometry (8, 32 and 128 chips) in every
    stepping mode.  A small fixed footprint keeps the 128-chip run
    test-suite-sized; the full-span version is the CI sweep job."""
    from repro.experiments.runner import run_workload
    from repro.perfbench.harness import sweep_geometry
    from repro.scenarios.presets import make_preset

    geometry = sweep_geometry(multiplier)
    scenario = make_preset("oltp", 1500, 600, seed=7)
    results = []
    for kernel, stepping in (("heap", "event"), ("calendar", "event"),
                             ("calendar", "vector")):
        config = ExperimentConfig(geometry=geometry,
                                  track_history=False,
                                  kernel=kernel, stepping=stepping)
        result = run_workload(ftl_name="flexFTL", scenario=scenario,
                              config=config)
        results.append(json.dumps(result.to_dict(), sort_keys=True))
    assert results[0] == results[1] == results[2]
