"""Tests for submission queues and per-tenant SLO accounting."""

import math

import pytest

from repro.qos.queues import SubmissionQueue
from repro.qos.slo import SloAccountant, SloTarget, TenantAccount
from repro.sim.queues import (
    REQUEST_FAILED,
    REQUEST_RECOVERED,
    Request,
    RequestKind,
)


def write(time=0.0, npages=1, tenant="t"):
    return Request(time, RequestKind.WRITE, 0, npages, tenant=tenant)


def read(time=0.0, npages=1, tenant="t"):
    return Request(time, RequestKind.READ, 0, npages, tenant=tenant)


class TestSubmissionQueue:
    def test_fifo_order_and_counters(self):
        queue = SubmissionQueue("t")
        first = queue.push(write(), seq=0, now=0.0)
        queue.push(write(), seq=1, now=0.1)
        assert len(queue) == 2
        assert queue.head is first
        assert queue.pop(0.2) is first
        assert queue.enqueued == 2
        assert queue.issued == 1
        assert queue.max_depth_seen == 2

    def test_seq_and_enqueue_time_recorded(self):
        queue = SubmissionQueue("t")
        command = queue.push(write(time=0.5), seq=7, now=0.5)
        assert command.seq == 7
        assert command.enqueued_at == 0.5

    def test_empty_queue_accessors(self):
        queue = SubmissionQueue("t")
        assert queue.is_empty
        with pytest.raises(IndexError):
            queue.head
        with pytest.raises(IndexError):
            queue.pop(0.0)

    def test_max_depth_enforced(self):
        queue = SubmissionQueue("t", max_depth=1)
        queue.push(write(), seq=0, now=0.0)
        with pytest.raises(OverflowError):
            queue.push(write(), seq=1, now=0.0)
        with pytest.raises(ValueError):
            SubmissionQueue("t", max_depth=0)

    def test_depth_timeline_sampled_on_push_and_pop(self):
        queue = SubmissionQueue("t")
        queue.push(write(), seq=0, now=0.0)
        queue.push(write(), seq=1, now=1.0)
        queue.pop(2.0)
        assert queue.depth_samples == [(0.0, 1), (1.0, 2), (2.0, 1)]

    def test_mean_depth_time_weighted(self):
        queue = SubmissionQueue("t")
        queue.push(write(), seq=0, now=0.0)   # depth 1 for 1 s
        queue.push(write(), seq=1, now=1.0)   # depth 2 for 3 s
        queue.pop(4.0)
        assert queue.mean_depth() == pytest.approx((1 * 1 + 2 * 3) / 4)

    def test_mean_depth_degenerate_cases(self):
        queue = SubmissionQueue("t")
        assert queue.mean_depth() == 0.0
        queue.push(write(), seq=0, now=0.0)
        assert queue.mean_depth() == 0.0  # single sample: no interval
        queue.push(write(), seq=1, now=0.0)
        # Zero span: plain mean of the sampled depths.
        assert queue.mean_depth() == pytest.approx(1.5)


class TestTenantAccount:
    def test_records_reads_and_writes(self):
        account = TenantAccount("t")
        account.record(write(time=0.0, npages=4), now=0.002)
        account.record(read(time=0.001, npages=1), now=0.002)
        assert account.completed_writes == 1
        assert account.completed_reads == 1
        assert account.written_pages == 4
        assert account.read_pages == 1
        assert account.write_latencies == [pytest.approx(0.002)]
        assert account.elapsed == pytest.approx(0.002)

    def test_violations_counted_against_targets(self):
        account = TenantAccount(
            "t", SloTarget(read_latency=1e-3, write_latency=1e-3))
        account.record(write(time=0.0), now=0.002)      # violation
        account.record(write(time=0.0), now=0.0005)     # within SLO
        account.record(read(time=0.0), now=0.005)       # violation
        assert account.write_violations == 1
        assert account.read_violations == 1

    def test_no_targets_means_no_violations(self):
        account = TenantAccount("t")
        account.record(write(time=0.0), now=10.0)
        assert account.write_violations == 0

    def test_summary_of_idle_tenant(self):
        summary = TenantAccount("t").summary()
        assert math.isnan(summary["iops"])
        assert math.isnan(summary["write_latency"]["p99"])
        assert summary["completed_writes"] == 0

    def test_failed_requests_counted_not_completed(self):
        account = TenantAccount("t")
        failed = write(time=0.0)
        failed.status = REQUEST_FAILED
        account.record(failed, now=0.002)
        assert account.failed_requests == 1
        assert account.completed_writes == 0
        assert account.written_pages == 0
        assert account.write_latencies == []

    def test_recovered_requests_counted_and_completed(self):
        account = TenantAccount("t")
        recovered = read(time=0.0)
        recovered.status = REQUEST_RECOVERED
        account.record(recovered, now=0.002)
        assert account.recovered_requests == 1
        assert account.completed_reads == 1
        assert account.read_latencies == [pytest.approx(0.002)]

    def test_summary_reports_fault_outcomes(self):
        account = TenantAccount("t")
        failed = write(time=0.0)
        failed.status = REQUEST_FAILED
        account.record(failed, now=0.001)
        summary = account.summary()
        assert summary["failed_requests"] == 1
        assert summary["recovered_requests"] == 0


class TestSloAccountant:
    def test_accounts_created_on_first_sight(self):
        accountant = SloAccountant()
        accountant.record(write(tenant="new"), now=0.001)
        assert accountant.accounts["new"].completed_writes == 1

    def test_untagged_requests_ignored(self):
        accountant = SloAccountant()
        accountant.record(write(tenant=None), now=0.001)
        assert accountant.accounts == {}

    def test_targets_applied_to_named_tenants(self):
        accountant = SloAccountant(
            {"victim": SloTarget(write_latency=1e-6)})
        accountant.record(write(tenant="victim"), now=1.0)
        accountant.record(write(tenant="other"), now=1.0)
        assert accountant.accounts["victim"].write_violations == 1
        assert accountant.accounts["other"].write_violations == 0

    def test_attach_chains_existing_hook(self):
        class Hooked:
            completion_hook = None

        controller = Hooked()
        seen = []
        controller.completion_hook = \
            lambda request, now: seen.append("first")
        accountant = SloAccountant()
        accountant.attach(controller)
        controller.completion_hook(write(tenant="t"), 0.001)
        assert seen == ["first"]
        assert accountant.accounts["t"].completed_writes == 1

    def test_summary_shape(self):
        accountant = SloAccountant()
        accountant.record(write(tenant="t"), now=0.001)
        summary = accountant.summary()
        assert set(summary) == {"t"}
        assert summary["t"]["completed_writes"] == 1
