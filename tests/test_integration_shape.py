"""Integration test: the paper's headline shapes at reduced scale.

One moderately sized Figure 8 style comparison (two workloads, four
FTLs) asserting the qualitative results the paper reports.  Marked
slow-ish but still well under a minute.
"""

import pytest

from repro.experiments.fig8 import run_fig8
from repro.experiments.runner import ExperimentConfig

# The default experiment geometry: flexFTL's quota and SBQueue sizing
# scale with the device, so the headline shapes need the full device
# (the op count is reduced instead to keep the test quick).
CONFIG = ExperimentConfig()


@pytest.fixture(scope="module")
def fig8():
    # NTRX is shortened (its differences are steady-state from the
    # start); Varmail runs at full length because flexFTL's advantage
    # there appears once background GC reaches steady state and keeps
    # the LSB quota replenished.
    return run_fig8(workloads=("NTRX", "Varmail"), config=CONFIG,
                    ops={"NTRX": 9600, "Varmail": 24000},
                    utilization=0.75, seed=1)


class TestFig8aShape:
    def test_flexftl_beats_backup_baselines_everywhere(self, fig8):
        for workload, runs in fig8.iops().items():
            assert runs["flexFTL"] > runs["parityFTL"], workload
            assert runs["flexFTL"] > runs["rtfFTL"], workload

    def test_flexftl_close_to_pageftl_on_intensive_load(self, fig8):
        iops = fig8.iops()["NTRX"]
        assert iops["flexFTL"] >= 0.85 * iops["pageFTL"]

    def test_flexftl_beats_pageftl_on_bursty_load(self, fig8):
        iops = fig8.iops()["Varmail"]
        assert iops["flexFTL"] >= 1.02 * iops["pageFTL"]

    def test_parityftl_pays_backup_tax_when_intensive(self, fig8):
        iops = fig8.iops()["NTRX"]
        assert iops["parityFTL"] < 0.95 * iops["pageFTL"]


class TestFig8bShape:
    def test_flexftl_erases_less_than_parityftl(self, fig8):
        for workload, runs in fig8.erasures().items():
            assert runs["flexFTL"] < runs["parityFTL"], workload

    def test_flexftl_erases_less_than_rtfftl(self, fig8):
        for workload, runs in fig8.erasures().items():
            assert runs["flexFTL"] < runs["rtfFTL"], workload

    def test_pageftl_erases_least(self, fig8):
        for workload, runs in fig8.erasures().items():
            assert runs["pageFTL"] <= runs["flexFTL"], workload


class TestFig8cShape:
    def test_flexftl_peak_bandwidth_dominates(self, fig8):
        ratio = fig8.varmail_peak_ratio("flexFTL", "rtfFTL")
        assert ratio > 1.3  # paper: ~2.13x at full scale

    def test_cdf_points_available_for_all_ftls(self, fig8):
        cdf = fig8.varmail_cdf()
        assert set(cdf) == {"pageFTL", "parityFTL", "rtfFTL", "flexFTL"}


class TestBackupArithmetic:
    def test_flexftl_backup_overhead_is_tiny(self, fig8):
        runs = fig8.runs["Varmail"]
        flex = runs["flexFTL"].counters
        parity = runs["parityFTL"].counters
        assert flex["backup_programs"] * 5 < parity["backup_programs"]

    def test_write_amplification_ordering(self, fig8):
        runs = fig8.runs["NTRX"]
        assert runs["pageFTL"].write_amplification <= \
            runs["flexFTL"].write_amplification
        assert runs["flexFTL"].write_amplification < \
            runs["parityFTL"].write_amplification
