"""Tests for scenario CSV export, metadata and streaming parse.

The round-trip contract is field-for-field losslessness: a scenario
exported with :func:`write_scenario_csv` and read back through
:class:`TraceScenario` yields the *same* tagged ops, globally and per
stream.  Malformed files must fail with ``file:line`` context, and a
trace spec must pin the file content by hash.
"""

import csv
import json

import pytest

from repro.scenarios import (
    ScenarioCsvError,
    StreamScenario,
    TraceScenario,
    iter_scenario_csv,
    make_preset,
    read_scenario_meta,
    scenario_from_spec,
    write_scenario_csv,
)
from repro.scenarios.base import OPEN, TenantBinding
from repro.scenarios.generator import Phase, WorkloadScenario
from repro.sim.queues import RequestKind


def _export(tmp_path, scenario, name="trace.csv"):
    path = tmp_path / name
    rows = write_scenario_csv(scenario, path)
    return path, rows


class TestRoundTrip:
    def test_ops_are_lossless(self, tmp_path):
        scenario = make_preset("varmail", 512, 200, seed=5)
        path, rows = _export(tmp_path, scenario)
        original = list(scenario.ops())
        replayed = list(TraceScenario(path).ops())
        assert rows == len(original)
        assert replayed == original

    def test_per_stream_recovery(self, tmp_path):
        scenario = make_preset("fileserver", 512, 200, seed=5)
        path, _ = _export(tmp_path, scenario)
        trace = TraceScenario(path)
        assert trace.stream_count == scenario.stream_count
        for mine, theirs in zip(trace.op_streams(),
                                scenario.op_streams()):
            assert list(mine) == list(theirs)

    def test_fingerprints_agree(self, tmp_path):
        scenario = make_preset("oltp", 512, 150, seed=2)
        path, _ = _export(tmp_path, scenario)
        assert TraceScenario(path).fingerprint() == \
            scenario.fingerprint()

    def test_tenants_survive(self, tmp_path):
        phases = (Phase(name="s", ops=40, read_fraction=0.5),)
        scenario = WorkloadScenario(
            "qos", 128, 2, phases, seed=1,
            tenants=(TenantBinding("victim", 1, weight=2.0),
                     TenantBinding("noisy", 1,
                                   rate_pages_per_sec=100.0)))
        path, _ = _export(tmp_path, scenario)
        trace = TraceScenario(path)
        assert trace.tenant_bindings() == scenario.tenant_bindings()
        assert {op.tenant for op in trace.ops()} == {"victim", "noisy"}


class TestMeta:
    def test_meta_row_contents(self, tmp_path):
        scenario = make_preset("webserver", 256, 100, seed=1)
        path, _ = _export(tmp_path, scenario)
        meta = read_scenario_meta(path)
        assert meta["schema"] == 1
        assert meta["name"] == "webserver"
        assert meta["mode"] == "closed"
        assert meta["footprint"] == 256
        assert meta["streams"] == 8

    def test_file_without_meta_needs_stream_override(self, tmp_path):
        path = tmp_path / "foreign.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["seq", "time", "op", "phase", "payload"])
            writer.writerow([0, "", "W", "", '{"lpn":1,"npages":1}'])
        assert read_scenario_meta(path) == {}
        with pytest.raises(ValueError, match="stream count unknown"):
            TraceScenario(path).op_streams()
        streams = TraceScenario(path, streams=1).op_streams()
        assert [op.lpn for it in streams for op in it] == [1]

    def test_malformed_meta_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text('#meta,"{not json"\n')
        with pytest.raises(ScenarioCsvError, match=":1:"):
            read_scenario_meta(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TraceScenario(tmp_path / "nope.csv")


class TestMalformedRows:
    def _write(self, tmp_path, *rows):
        path = tmp_path / "bad.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["seq", "time", "op", "phase", "payload"])
            for row in rows:
                writer.writerow(row)
        return path

    def test_wrong_field_count(self, tmp_path):
        path = self._write(tmp_path, [0, "", "W", ""])
        with pytest.raises(ScenarioCsvError, match=r"bad\.csv:2"):
            list(iter_scenario_csv(path))

    def test_unknown_op(self, tmp_path):
        path = self._write(tmp_path,
                           [0, "", "X", "", '{"lpn":1,"npages":1}'])
        with pytest.raises(ScenarioCsvError, match="unknown op"):
            list(iter_scenario_csv(path))

    def test_bad_time(self, tmp_path):
        path = self._write(tmp_path,
                           [0, "soon", "W", "", '{"lpn":1,"npages":1}'])
        with pytest.raises(ScenarioCsvError, match="malformed time"):
            list(iter_scenario_csv(path))

    def test_bad_payload_json(self, tmp_path):
        path = self._write(tmp_path, [0, "", "W", "", "{oops"])
        with pytest.raises(ScenarioCsvError, match="payload JSON"):
            list(iter_scenario_csv(path))

    def test_payload_missing_lpn(self, tmp_path):
        path = self._write(tmp_path, [0, "", "W", "", '{"npages":1}'])
        with pytest.raises(ScenarioCsvError, match="lpn"):
            list(iter_scenario_csv(path))

    def test_non_numeric_payload(self, tmp_path):
        path = self._write(
            tmp_path, [0, "", "W", "", '{"lpn":"a","npages":1}'])
        with pytest.raises(ScenarioCsvError, match="non-numeric"):
            list(iter_scenario_csv(path))

    def test_negative_lpn(self, tmp_path):
        path = self._write(
            tmp_path, [0, "", "W", "", '{"lpn":-1,"npages":1}'])
        with pytest.raises(ScenarioCsvError, match="lpn must be"):
            list(iter_scenario_csv(path))

    def test_error_names_the_right_line(self, tmp_path):
        path = self._write(
            tmp_path,
            [0, "", "W", "", '{"lpn":1,"npages":1}'],
            [1, "", "W", "", '{"lpn":2,"npages":0}'])
        with pytest.raises(ScenarioCsvError, match=r"bad\.csv:3"):
            list(iter_scenario_csv(path))


class TestModes:
    def _open_trace(self, tmp_path, times):
        path = tmp_path / "open.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                ["#meta", json.dumps({"mode": "open", "name": "t"})])
            writer.writerow(["seq", "time", "op", "phase", "payload"])
            for seq, time in enumerate(times):
                writer.writerow([seq, repr(time), "W", "",
                                 '{"lpn":%d,"npages":1}' % seq])
        return path

    def test_open_trace_replays_as_requests(self, tmp_path):
        path = self._open_trace(tmp_path, [0.0, 0.5, 1.25])
        trace = TraceScenario(path)
        assert trace.mode == OPEN
        requests = list(trace.requests())
        assert [r.time for r in requests] == [0.0, 0.5, 1.25]
        assert all(r.kind is RequestKind.WRITE for r in requests)

    def test_mode_mismatch_rejected(self, tmp_path):
        open_path = self._open_trace(tmp_path, [0.0])
        with pytest.raises(ValueError, match="open-mode"):
            TraceScenario(open_path).op_streams()
        scenario = make_preset("oltp", 128, 50, seed=1)
        closed_path, _ = _export(tmp_path, scenario)
        with pytest.raises(ValueError, match="closed-mode"):
            list(TraceScenario(closed_path).requests())

    def test_bogus_mode_rejected(self, tmp_path):
        scenario = make_preset("oltp", 128, 50, seed=1)
        path, _ = _export(tmp_path, scenario)
        with pytest.raises(ValueError, match="mode"):
            TraceScenario(path, mode="sideways")


class TestTraceSpec:
    def test_spec_round_trip(self, tmp_path):
        scenario = make_preset("varmail", 256, 100, seed=1)
        path, _ = _export(tmp_path, scenario)
        trace = TraceScenario(path)
        clone = scenario_from_spec(
            json.loads(json.dumps(trace.spec())))
        assert clone.fingerprint() == trace.fingerprint()

    def test_spec_detects_content_change(self, tmp_path):
        scenario = make_preset("varmail", 256, 100, seed=1)
        path, _ = _export(tmp_path, scenario)
        spec = TraceScenario(path).spec()
        with path.open("a", newline="") as handle:
            handle.write('999,,W,,"{""lpn"":1,""npages"":1}"\n')
        with pytest.raises(ValueError, match="content changed"):
            scenario_from_spec(spec)

    def test_stream_scenario_exports_too(self, tmp_path):
        from repro.workloads.benchmarks import build_workload
        scenario = StreamScenario.from_streams(
            build_workload("OLTP", 256, total_ops=60, seed=1))
        path, rows = _export(tmp_path, scenario)
        assert rows == scenario.total_ops
        assert TraceScenario(path).fingerprint() == \
            scenario.fingerprint()
