"""Tests for repro.nand.chip and repro.nand.array."""

import pytest

from repro.core.rps import fps_order, rps_full_order
from repro.nand.array import NandArray
from repro.nand.chip import Chip
from repro.nand.errors import ProgramSequenceError
from repro.nand.geometry import NandGeometry, PhysicalPageAddress
from repro.nand.page_types import PageType, split_index
from repro.nand.sequence import SequenceScheme
from repro.nand.timing import NandTiming


def program_order(chip, block, order):
    for index in order:
        wordline, ptype = split_index(index)
        chip.program(block, wordline, ptype)


class TestChipEnforcement:
    def test_rps_chip_accepts_2po_order(self):
        chip = Chip(0, blocks=1, wordlines_per_block=4,
                    scheme=SequenceScheme.RPS)
        program_order(chip, 0, rps_full_order(4))
        assert chip.blocks[0].programmed_count() == 8

    def test_fps_chip_rejects_2po_order(self):
        chip = Chip(0, blocks=1, wordlines_per_block=4,
                    scheme=SequenceScheme.FPS)
        with pytest.raises(ProgramSequenceError):
            program_order(chip, 0, rps_full_order(4))

    def test_both_schemes_accept_fps_order(self):
        for scheme in (SequenceScheme.FPS, SequenceScheme.RPS):
            chip = Chip(0, blocks=1, wordlines_per_block=4, scheme=scheme)
            program_order(chip, 0, fps_order(4))
            assert chip.blocks[0].programmed_count() == 8

    def test_violation_message_names_constraint(self):
        chip = Chip(0, blocks=1, wordlines_per_block=4,
                    scheme=SequenceScheme.RPS)
        chip.program(0, 0, PageType.LSB)
        with pytest.raises(ProgramSequenceError, match="constraint 3"):
            chip.program(0, 0, PageType.MSB)

    def test_erase_allows_reprogramming(self):
        chip = Chip(0, blocks=1, wordlines_per_block=2,
                    scheme=SequenceScheme.RPS)
        program_order(chip, 0, rps_full_order(2))
        chip.erase(0)
        program_order(chip, 0, rps_full_order(2))
        assert chip.erases == 1
        assert chip.blocks[0].erase_count == 1


class TestChipAccounting:
    def test_program_latencies_by_type(self):
        timing = NandTiming()
        chip = Chip(0, blocks=1, wordlines_per_block=2, timing=timing,
                    scheme=SequenceScheme.RPS)
        assert chip.program(0, 0, PageType.LSB) == timing.t_lsb_prog
        assert chip.program(0, 1, PageType.LSB) == timing.t_lsb_prog
        assert chip.program(0, 0, PageType.MSB) == timing.t_msb_prog

    def test_counters(self):
        chip = Chip(0, blocks=1, wordlines_per_block=2,
                    scheme=SequenceScheme.RPS)
        program_order(chip, 0, rps_full_order(2))
        chip.read(0, 0, PageType.LSB)
        chip.erase(0)
        assert chip.lsb_programs == 2
        assert chip.msb_programs == 2
        assert chip.total_programs == 4
        assert chip.reads == 1
        assert chip.erases == 1

    def test_busy_time_accumulates(self):
        timing = NandTiming()
        chip = Chip(0, blocks=1, wordlines_per_block=1, timing=timing,
                    scheme=SequenceScheme.RPS)
        chip.program(0, 0, PageType.LSB)
        chip.program(0, 0, PageType.MSB)
        expected = timing.t_lsb_prog + timing.t_msb_prog
        assert chip.busy_time == pytest.approx(expected)


class TestArray:
    @pytest.fixture
    def array(self, tiny_geometry):
        return NandArray(tiny_geometry, scheme=SequenceScheme.RPS,
                         store_data=True)

    def test_array_builds_all_chips(self, array, tiny_geometry):
        assert len(array.chips) == tiny_geometry.total_chips

    def test_program_read_roundtrip(self, array):
        addr = PhysicalPageAddress(1, 0, 2, 0)
        array.program(addr, b"payload")
        data, latency = array.read(addr)
        assert data == b"payload"
        assert latency == array.timing.t_read

    def test_aggregate_counters(self, array):
        array.program(PhysicalPageAddress(0, 0, 0, 0))
        array.program(PhysicalPageAddress(1, 0, 0, 0))
        array.program(PhysicalPageAddress(1, 0, 0, 2))
        array.program(PhysicalPageAddress(1, 0, 0, 1))  # MSB(0)
        assert array.lsb_programs == 3
        assert array.msb_programs == 1
        assert array.total_programs == 4
        array.erase(1, 0, 0)
        assert array.total_erases == 1

    def test_page_type_of(self, array):
        assert array.page_type_of(
            PhysicalPageAddress(0, 0, 0, 0)) is PageType.LSB
        assert array.page_type_of(
            PhysicalPageAddress(0, 0, 0, 1)) is PageType.MSB

    def test_is_programmed(self, array):
        addr = PhysicalPageAddress(0, 0, 0, 0)
        assert not array.is_programmed(addr)
        array.program(addr)
        assert array.is_programmed(addr)

    def test_operations_route_to_owning_chip(self, array, tiny_geometry):
        addr = PhysicalPageAddress(1, 0, 0, 0)
        array.program(addr)
        owning = array.chips[tiny_geometry.chip_id(1, 0)]
        other = array.chips[tiny_geometry.chip_id(0, 0)]
        assert owning.total_programs == 1
        assert other.total_programs == 0


class TestProgramBatch:
    """The unified state store and the vectorized batch-program path.

    ``program_batch`` must be observably identical to the sequential
    ``[program(a, d) for ...]`` loop in every case — the vector fast
    path only engages when it can prove that, and otherwise falls
    back (including for its error semantics).
    """

    GEOMETRY = NandGeometry(channels=2, chips_per_channel=2,
                            blocks_per_chip=4, pages_per_block=8,
                            page_size=256)

    def make_pair(self, **kwargs):
        """Two identical arrays: one unified (vector-capable), one not."""
        vec = NandArray(self.GEOMETRY, scheme=SequenceScheme.RPS,
                        **kwargs)
        seq = NandArray(self.GEOMETRY, scheme=SequenceScheme.RPS,
                        **kwargs)
        assert vec.unify_state_store() is True
        return vec, seq

    @staticmethod
    def snapshot(array):
        return [
            (bytes(blk._states), blk._used, chip.lsb_programs,
             chip.msb_programs, chip.busy_time)
            for chip in array.chips for blk in chip.blocks
        ]

    def test_unify_is_idempotent_and_preserves_state(self):
        array = NandArray(self.GEOMETRY, scheme=SequenceScheme.RPS)
        addr = PhysicalPageAddress(0, 1, 2, 0)
        array.program(addr)
        assert array.unify_state_store() is True
        assert array.unify_state_store() is True
        assert array.is_programmed(addr)
        # Erase zeroes in place so the flat store stays aliased.
        array.erase(0, 1, 2)
        assert not array.is_programmed(addr)
        assert not array._np_states.any()
        array.program(addr)
        assert array._np_states.sum() == 1

    def test_vector_batch_matches_sequential(self):
        vec, seq = self.make_pair()
        # One LSB program per chip: all four lanes vectorize.
        batch = [PhysicalPageAddress(ch, c, 1, 0)
                 for ch in range(2) for c in range(2)]
        lat_vec = vec.program_batch(batch)
        lat_seq = [seq.program(a) for a in batch]
        assert lat_vec == lat_seq
        assert self.snapshot(vec) == self.snapshot(seq)

    def test_vector_msb_batch_matches_sequential(self):
        vec, seq = self.make_pair()
        chips = [(0, 0), (0, 1), (1, 0), (1, 1)]
        for page in (0, 2):  # RPS prerequisites for MSB page 1
            vec.program_batch([PhysicalPageAddress(ch, c, 0, page)
                               for ch, c in chips])
            for ch, c in chips:
                seq.program(PhysicalPageAddress(ch, c, 0, page))
        msb = [PhysicalPageAddress(ch, c, 0, 1) for ch, c in chips]
        assert vec.program_batch(msb) == [seq.program(a) for a in msb]
        assert self.snapshot(vec) == self.snapshot(seq)

    def test_shared_chip_batch_falls_back_sequential(self):
        vec, seq = self.make_pair()
        # Both ops on one chip, the second legal only after the first:
        # the vector path must refuse and the fallback apply in order.
        batch = [PhysicalPageAddress(0, 0, 0, 0),
                 PhysicalPageAddress(0, 0, 0, 2)]
        vec.program_batch(batch)
        for a in batch:
            seq.program(a)
        assert self.snapshot(vec) == self.snapshot(seq)

    def test_illegal_op_raises_after_earlier_ops_apply(self):
        vec, _ = self.make_pair()
        batch = [PhysicalPageAddress(0, 0, 0, 0),    # legal LSB
                 PhysicalPageAddress(1, 0, 0, 1)]    # MSB before LSB
        with pytest.raises(ProgramSequenceError):
            vec.program_batch(batch)
        # Sequential error semantics: the first op landed.
        assert vec.is_programmed(batch[0])
        assert not vec.is_programmed(batch[1])

    def test_non_erased_target_raises(self):
        from repro.nand.errors import PageStateError

        vec, _ = self.make_pair()
        addr = PhysicalPageAddress(0, 0, 0, 0)
        vec.program(addr)
        with pytest.raises(PageStateError):
            vec.program_batch([addr, PhysicalPageAddress(1, 0, 0, 0)])

    def test_out_of_range_address_raises(self):
        from repro.nand.errors import AddressError

        vec, _ = self.make_pair()
        with pytest.raises(AddressError):
            vec.program_batch([PhysicalPageAddress(0, 0, 0, 0),
                               PhysicalPageAddress(0, 9, 0, 0)])

    def test_batch_stores_payloads(self):
        vec, _ = self.make_pair(store_data=True)
        batch = [PhysicalPageAddress(0, 0, 0, 0),
                 PhysicalPageAddress(1, 1, 0, 0)]
        vec.program_batch(batch, [b"a", b"b"])
        assert vec.read(batch[0])[0] == b"a"
        assert vec.read(batch[1])[0] == b"b"

    def test_batch_without_unified_store_matches_sequential(self):
        plain = NandArray(self.GEOMETRY, scheme=SequenceScheme.RPS)
        twin = NandArray(self.GEOMETRY, scheme=SequenceScheme.RPS)
        batch = [PhysicalPageAddress(0, 0, 0, 0),
                 PhysicalPageAddress(1, 1, 0, 0)]
        assert plain.program_batch(batch) == [twin.program(a)
                                              for a in batch]
        assert (self.snapshot(plain) == self.snapshot(twin))
