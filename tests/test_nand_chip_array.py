"""Tests for repro.nand.chip and repro.nand.array."""

import pytest

from repro.core.rps import fps_order, rps_full_order
from repro.nand.array import NandArray
from repro.nand.chip import Chip
from repro.nand.errors import ProgramSequenceError
from repro.nand.geometry import NandGeometry, PhysicalPageAddress
from repro.nand.page_types import PageType, split_index
from repro.nand.sequence import SequenceScheme
from repro.nand.timing import NandTiming


def program_order(chip, block, order):
    for index in order:
        wordline, ptype = split_index(index)
        chip.program(block, wordline, ptype)


class TestChipEnforcement:
    def test_rps_chip_accepts_2po_order(self):
        chip = Chip(0, blocks=1, wordlines_per_block=4,
                    scheme=SequenceScheme.RPS)
        program_order(chip, 0, rps_full_order(4))
        assert chip.blocks[0].programmed_count() == 8

    def test_fps_chip_rejects_2po_order(self):
        chip = Chip(0, blocks=1, wordlines_per_block=4,
                    scheme=SequenceScheme.FPS)
        with pytest.raises(ProgramSequenceError):
            program_order(chip, 0, rps_full_order(4))

    def test_both_schemes_accept_fps_order(self):
        for scheme in (SequenceScheme.FPS, SequenceScheme.RPS):
            chip = Chip(0, blocks=1, wordlines_per_block=4, scheme=scheme)
            program_order(chip, 0, fps_order(4))
            assert chip.blocks[0].programmed_count() == 8

    def test_violation_message_names_constraint(self):
        chip = Chip(0, blocks=1, wordlines_per_block=4,
                    scheme=SequenceScheme.RPS)
        chip.program(0, 0, PageType.LSB)
        with pytest.raises(ProgramSequenceError, match="constraint 3"):
            chip.program(0, 0, PageType.MSB)

    def test_erase_allows_reprogramming(self):
        chip = Chip(0, blocks=1, wordlines_per_block=2,
                    scheme=SequenceScheme.RPS)
        program_order(chip, 0, rps_full_order(2))
        chip.erase(0)
        program_order(chip, 0, rps_full_order(2))
        assert chip.erases == 1
        assert chip.blocks[0].erase_count == 1


class TestChipAccounting:
    def test_program_latencies_by_type(self):
        timing = NandTiming()
        chip = Chip(0, blocks=1, wordlines_per_block=2, timing=timing,
                    scheme=SequenceScheme.RPS)
        assert chip.program(0, 0, PageType.LSB) == timing.t_lsb_prog
        assert chip.program(0, 1, PageType.LSB) == timing.t_lsb_prog
        assert chip.program(0, 0, PageType.MSB) == timing.t_msb_prog

    def test_counters(self):
        chip = Chip(0, blocks=1, wordlines_per_block=2,
                    scheme=SequenceScheme.RPS)
        program_order(chip, 0, rps_full_order(2))
        chip.read(0, 0, PageType.LSB)
        chip.erase(0)
        assert chip.lsb_programs == 2
        assert chip.msb_programs == 2
        assert chip.total_programs == 4
        assert chip.reads == 1
        assert chip.erases == 1

    def test_busy_time_accumulates(self):
        timing = NandTiming()
        chip = Chip(0, blocks=1, wordlines_per_block=1, timing=timing,
                    scheme=SequenceScheme.RPS)
        chip.program(0, 0, PageType.LSB)
        chip.program(0, 0, PageType.MSB)
        expected = timing.t_lsb_prog + timing.t_msb_prog
        assert chip.busy_time == pytest.approx(expected)


class TestArray:
    @pytest.fixture
    def array(self, tiny_geometry):
        return NandArray(tiny_geometry, scheme=SequenceScheme.RPS,
                         store_data=True)

    def test_array_builds_all_chips(self, array, tiny_geometry):
        assert len(array.chips) == tiny_geometry.total_chips

    def test_program_read_roundtrip(self, array):
        addr = PhysicalPageAddress(1, 0, 2, 0)
        array.program(addr, b"payload")
        data, latency = array.read(addr)
        assert data == b"payload"
        assert latency == array.timing.t_read

    def test_aggregate_counters(self, array):
        array.program(PhysicalPageAddress(0, 0, 0, 0))
        array.program(PhysicalPageAddress(1, 0, 0, 0))
        array.program(PhysicalPageAddress(1, 0, 0, 2))
        array.program(PhysicalPageAddress(1, 0, 0, 1))  # MSB(0)
        assert array.lsb_programs == 3
        assert array.msb_programs == 1
        assert array.total_programs == 4
        array.erase(1, 0, 0)
        assert array.total_erases == 1

    def test_page_type_of(self, array):
        assert array.page_type_of(
            PhysicalPageAddress(0, 0, 0, 0)) is PageType.LSB
        assert array.page_type_of(
            PhysicalPageAddress(0, 0, 0, 1)) is PageType.MSB

    def test_is_programmed(self, array):
        addr = PhysicalPageAddress(0, 0, 0, 0)
        assert not array.is_programmed(addr)
        array.program(addr)
        assert array.is_programmed(addr)

    def test_operations_route_to_owning_chip(self, array, tiny_geometry):
        addr = PhysicalPageAddress(1, 0, 0, 0)
        array.program(addr)
        owning = array.chips[tiny_geometry.chip_id(1, 0)]
        other = array.chips[tiny_geometry.chip_id(0, 0)]
        assert owning.total_programs == 1
        assert other.total_programs == 0
