"""Tests for the metrics package."""

import pytest

from repro.metrics.bandwidth import cdf_points, mean_bandwidth, peak_ratio
from repro.metrics.iops import normalize, speedup_matrix
from repro.metrics.lifetime import erasure_summary, wear_spread
from repro.metrics.report import render_grouped_bars, render_table
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.sim.stats import WindowedBandwidth


class TestNormalize:
    def test_normalize_to_baseline(self):
        values = {"a": 2.0, "b": 4.0, "base": 2.0}
        normalized = normalize(values, "base")
        assert normalized == {"a": 1.0, "b": 2.0, "base": 1.0}

    def test_missing_baseline(self):
        with pytest.raises(KeyError):
            normalize({"a": 1.0}, "base")

    def test_zero_baseline(self):
        with pytest.raises(ValueError):
            normalize({"base": 0.0}, "base")

    def test_speedup_matrix(self):
        matrix = speedup_matrix({"fast": 4.0, "slow": 2.0})
        assert matrix["fast"]["slow"] == pytest.approx(2.0)
        assert matrix["slow"]["fast"] == pytest.approx(0.5)
        assert matrix["fast"]["fast"] == pytest.approx(1.0)


class TestBandwidthMetrics:
    def make_tracker(self, values):
        tracker = WindowedBandwidth(window=1.0)
        for index, mbps in enumerate(values):
            tracker.record(float(index), int(mbps * 1e6))
        return tracker

    def test_cdf_points_monotonic(self):
        tracker = self.make_tracker(range(1, 101))
        points = cdf_points(tracker)
        values = [v for _, v in points]
        assert values == sorted(values)
        assert points[-1][1] == pytest.approx(100.0)

    def test_peak_ratio(self):
        trackers = {
            "flex": self.make_tracker([10, 20, 80]),
            "rtf": self.make_tracker([10, 20, 40]),
        }
        assert peak_ratio(trackers, "flex", "rtf", fraction=1.0) \
            == pytest.approx(2.0)

    def test_mean_bandwidth(self):
        tracker = self.make_tracker([10, 20, 30])
        assert mean_bandwidth(tracker) == pytest.approx(20.0)

    def test_empty_tracker_rejected(self):
        with pytest.raises(ValueError):
            cdf_points(WindowedBandwidth())


class TestLifetimeMetrics:
    def test_erasure_summary(self):
        counters = {"host_programs": 100, "gc_programs": 30,
                    "backup_programs": 20, "erases": 7}
        summary = erasure_summary(counters)
        assert summary["erases"] == 7.0
        assert summary["write_amplification"] == pytest.approx(1.5)
        assert summary["backup_overhead"] == pytest.approx(0.2)
        assert summary["gc_overhead"] == pytest.approx(0.3)

    def test_wear_spread(self):
        geometry = NandGeometry(channels=1, chips_per_channel=1,
                                blocks_per_chip=4, pages_per_block=4)
        array = NandArray(geometry)
        array.erase(0, 0, 0)
        array.erase(0, 0, 0)
        array.erase(0, 0, 1)
        spread = wear_spread(array)
        assert spread["max"] == 2.0
        assert spread["min"] == 0.0
        assert spread["mean"] == pytest.approx(0.75)


class TestReportRendering:
    def test_render_table_alignment(self):
        table = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "name" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only one"]])

    def test_grouped_bars_appends_average(self):
        data = {
            "w1": {"x": 1.0, "y": 2.0},
            "w2": {"x": 3.0, "y": 4.0},
        }
        rendered = render_grouped_bars(data, ["x", "y"])
        assert "Average" in rendered
        assert "2.00" in rendered  # avg of x
        assert "3.00" in rendered  # avg of y
