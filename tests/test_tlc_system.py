"""Tests for the TLC array, FTLs and system experiment."""

import pytest

from repro.core.tlc_ftl import (
    ThreePhaseBlockManager,
    TlcFlexFtl,
    TlcPageFtl,
)
from repro.experiments.tlc_system import (
    build_tlc_system,
    render_tlc_comparison,
    run_tlc_workload,
)
from repro.ftl.base import FtlConfig
from repro.nand.geometry import PhysicalPageAddress
from repro.nand.tlc import TlcPageType, TlcScheme
from repro.nand.tlc_array import TlcGeometry, TlcNandArray
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.queues import RequestKind, WriteBuffer

SMALL_TLC = TlcGeometry(channels=2, chips_per_channel=1,
                        blocks_per_chip=16, pages_per_block=12,
                        page_size=512)


class TestTlcGeometry:
    def test_wordlines_are_a_third(self):
        assert SMALL_TLC.wordlines_per_block == 4

    def test_requires_multiple_of_six(self):
        with pytest.raises(ValueError):
            TlcGeometry(channels=1, chips_per_channel=1,
                        blocks_per_chip=4, pages_per_block=8)

    def test_address_codec_still_works(self):
        for ppn in range(SMALL_TLC.total_pages):
            assert SMALL_TLC.ppn(SMALL_TLC.address_of(ppn)) == ppn


class TestTlcArray:
    def test_program_counts_by_type(self):
        array = TlcNandArray(SMALL_TLC, scheme=TlcScheme.RPS)
        array.program(PhysicalPageAddress(0, 0, 0, 0))  # LSB(0)
        array.program(PhysicalPageAddress(0, 0, 0, 3))  # LSB(1)
        array.program(PhysicalPageAddress(0, 0, 0, 6))  # LSB(2)
        array.program(PhysicalPageAddress(0, 0, 0, 1))  # CSB(0)
        assert array.lsb_programs == 3
        assert array.csb_programs == 1
        assert array.msb_programs == 0

    def test_program_latency_by_type(self):
        array = TlcNandArray(SMALL_TLC, scheme=TlcScheme.RPS)
        lsb = array.program(PhysicalPageAddress(0, 0, 0, 0))
        array.program(PhysicalPageAddress(0, 0, 0, 3))
        csb = array.program(PhysicalPageAddress(0, 0, 0, 1))
        assert lsb == pytest.approx(500e-6)
        assert csb == pytest.approx(2000e-6)

    def test_erase_and_is_programmed(self):
        array = TlcNandArray(SMALL_TLC, scheme=TlcScheme.RPS)
        addr = PhysicalPageAddress(0, 0, 0, 0)
        assert not array.is_programmed(addr)
        array.program(addr)
        assert array.is_programmed(addr)
        assert array.erase(0, 0, 0) == pytest.approx(10e-3)
        assert not array.is_programmed(addr)


class TestThreePhaseManager:
    def test_phase_transitions(self):
        manager = ThreePhaseBlockManager(wordlines=2)
        manager.install_fast_block(5)
        assert manager.take(TlcPageType.CSB) is None
        manager.take(TlcPageType.LSB)
        block, wordline, full = manager.take(TlcPageType.LSB)
        assert (block, wordline, full) == (5, 1, False)
        # LSB phase done: CSB available now.
        assert manager.available(TlcPageType.CSB)
        manager.take(TlcPageType.CSB)
        manager.take(TlcPageType.CSB)
        assert manager.available(TlcPageType.MSB)
        manager.take(TlcPageType.MSB)
        block, wordline, full = manager.take(TlcPageType.MSB)
        assert full
        assert not manager.available(TlcPageType.MSB)

    def test_double_install_rejected(self):
        manager = ThreePhaseBlockManager(wordlines=2)
        manager.install_fast_block(1)
        with pytest.raises(RuntimeError):
            manager.install_fast_block(2)


class TestTlcFtls:
    def run_writes(self, ftl_name, count, span=None):
        sim, array, buffer, ftl, controller = build_tlc_system(
            ftl_name, geometry=SMALL_TLC, buffer_pages=16)
        span = span or ftl.logical_pages
        ops = [StreamOp(RequestKind.WRITE, (i * 3) % span, 1)
               for i in range(count)]
        host = ClosedLoopHost(sim, controller, [ops])
        host.start()
        sim.run()
        return array, ftl, controller.stats

    def test_baseline_walks_mixed_types(self):
        array, ftl, stats = self.run_writes("tlc-pageFTL", 60)
        assert stats.completed_writes == 60
        assert array.lsb_programs > 0
        assert array.csb_programs > 0
        assert array.msb_programs > 0

    def test_flex_blocks_are_three_phase(self):
        array, ftl, stats = self.run_writes("tlc-flexFTL", 120)
        for chip in array.chips:
            for block in chip.blocks:
                history = block.program_history
                if len(history) < 2:
                    continue
                phases = [index % 3 for index in history]
                # within a block, phases never decrease (LSB run, then
                # CSB run, then MSB run)
                assert phases == sorted(phases)

    def test_flex_rejects_fps_array(self):
        array = TlcNandArray(SMALL_TLC, scheme=TlcScheme.FPS)
        with pytest.raises(ValueError):
            TlcFlexFtl(array, WriteBuffer(8))

    def test_sustained_overwrites_gc_without_deadlock(self):
        for name in ("tlc-pageFTL", "tlc-flexFTL"):
            array, ftl, stats = self.run_writes(name, 800, span=80)
            assert stats.completed_writes == 800
            assert array.total_erases > 0

    def test_quota_accounting(self):
        sim, array, buffer, ftl, controller = build_tlc_system(
            "tlc-flexFTL", geometry=SMALL_TLC)
        start = ftl.quota
        ftl._note_program(TlcPageType.LSB)
        assert ftl.quota == start - 2
        ftl._note_program(TlcPageType.CSB)
        ftl._note_program(TlcPageType.MSB)
        assert ftl.quota == start
        assert ftl.counters()["quota"] == ftl.quota


class TestTlcSystemExperiment:
    def test_run_and_render(self):
        result = run_tlc_workload("tlc-flexFTL", total_ops=600,
                                  geometry=SMALL_TLC)
        assert result.stats.completed_requests > 0
        text = render_tlc_comparison({"tlc-flexFTL": result})
        assert "tlc-flexFTL" in text

    def test_unknown_ftl_rejected(self):
        with pytest.raises(KeyError):
            build_tlc_system("tlc-nope")
