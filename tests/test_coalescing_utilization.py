"""Tests for write coalescing and chip-utilisation metrics."""

import pytest

from repro.ftl.pageftl import PageFtl
from repro.metrics.utilization import (
    chip_utilization,
    render_utilization,
    utilization_summary,
)
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.queues import RequestKind, WriteBuffer

from tests.helpers import build_small_system


class TestCoalescingBuffer:
    def test_default_keeps_every_copy(self):
        buffer = WriteBuffer(8)
        buffer.push(5, 0.0)
        buffer.push(5, 0.1)
        assert len(buffer) == 2
        assert buffer.pop().enqueued_at == 0.0
        assert buffer.pop().enqueued_at == 0.1

    def test_coalesce_supersedes_older_copy(self):
        buffer = WriteBuffer(8, coalesce=True)
        buffer.push(5, 0.0)
        buffer.push(5, 0.1)
        assert len(buffer) == 1
        assert buffer.coalesced_writes == 1
        entry = buffer.pop()
        assert entry.enqueued_at == 0.1  # only the newest survives
        assert buffer.is_empty

    def test_coalesce_preserves_other_lpns(self):
        buffer = WriteBuffer(8, coalesce=True)
        buffer.push(1, 0.0)
        buffer.push(2, 0.1)
        buffer.push(1, 0.2)
        assert len(buffer) == 2
        assert buffer.pop().lpn == 2   # stale copy of 1 skipped
        assert buffer.pop().lpn == 1
        assert buffer.is_empty

    def test_peek_skips_stale(self):
        buffer = WriteBuffer(8, coalesce=True)
        buffer.push(1, 0.0)
        buffer.push(1, 0.1)
        assert buffer.peek().enqueued_at == 0.1

    def test_contains_after_coalesce(self):
        buffer = WriteBuffer(8, coalesce=True)
        buffer.push(9, 0.0)
        buffer.push(9, 0.1)
        assert buffer.contains(9)
        buffer.pop()
        assert not buffer.contains(9)

    def test_capacity_counts_live_pages(self):
        buffer = WriteBuffer(2, coalesce=True)
        buffer.push(1, 0.0)
        buffer.push(1, 0.1)   # supersedes, still 1 live
        buffer.push(2, 0.2)
        assert buffer.is_full
        with pytest.raises(OverflowError):
            buffer.push(3, 0.3)

    def test_hot_workload_reaches_flash_less_with_coalescing(
            self, small_geometry):
        def programs(coalesce):
            system = build_small_system(PageFtl, small_geometry,
                                        buffer_pages=32)
            sim, array, buffer, ftl, controller = system
            buffer.coalesce = coalesce
            ops = [StreamOp(RequestKind.WRITE, i % 4, 1)
                   for i in range(200)]
            host = ClosedLoopHost(sim, controller, [ops])
            host.start()
            sim.run()
            return array.total_programs, buffer

        plain, _ = programs(False)
        fewer, buffer = programs(True)
        assert fewer <= plain
        assert buffer.coalesced_writes > 0


class TestChipUtilization:
    def test_busy_fractions(self, small_geometry):
        system = build_small_system(PageFtl, small_geometry,
                                    buffer_pages=32)
        sim, array, buffer, ftl, controller = system
        ops = [StreamOp(RequestKind.WRITE, i, 1) for i in range(100)]
        host = ClosedLoopHost(sim, controller, [ops])
        host.start()
        sim.run()
        fractions = chip_utilization(array, sim.now)
        assert len(fractions) == small_geometry.total_chips
        assert all(0.0 < f <= 1.0 for f in fractions)
        summary = utilization_summary(array, sim.now)
        assert summary["min"] <= summary["mean"] <= summary["max"]

    def test_render(self, small_geometry):
        system = build_small_system(PageFtl, small_geometry)
        sim, array, *_ , controller = system
        controller.submit(__import__("repro.sim.queues",
                                     fromlist=["Request"]).Request(
            0.0, RequestKind.WRITE, 0, 4))
        sim.run()
        text = render_utilization(array, max(sim.now, 1e-9))
        assert "chip" in text
        assert "mean" in text

    def test_zero_elapsed_rejected(self, small_geometry):
        system = build_small_system(PageFtl, small_geometry)
        array = system[1]
        with pytest.raises(ValueError):
            chip_utilization(array, 0.0)
