"""Engine batch deadline: hung cells fail fast with a typed error.

``EngineOptions.cell_timeout`` bounds the pooled path of
:func:`repro.experiments.engine.run_cells` with a conservative batch
deadline (``cell_timeout × ceil(pending / workers)`` — as if every
cell on a worker ran to its full budget), so slow-but-honest grids
never false-trip while a wedged worker raises
:class:`~repro.experiments.engine.CellTimeoutError` instead of
blocking the run forever.
"""

import multiprocessing
import time

import pytest

from repro.execpolicy import DeadlineExceeded
from repro.experiments.engine import (
    Cell,
    CellTimeoutError,
    EngineOptions,
    register_executor,
    run_cells,
)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="pool workers must inherit the test-only executor",
)


def _sleep_cell(*, seconds: float, tag: str):
    time.sleep(seconds)
    return {"tag": tag}


# Module level so forked pool workers inherit the registration.
register_executor("test_sleeper", _sleep_cell)


@fork_only
class TestCellTimeout:
    def test_hung_cells_raise_typed_error(self):
        cells = [Cell.make("test_sleeper", label=f"hung-{i}",
                           seconds=60.0, tag=f"hung-{i}")
                 for i in range(2)]
        options = EngineOptions(jobs=2, cache=None, progress=False,
                                cell_timeout=0.5)
        start = time.monotonic()
        with pytest.raises(CellTimeoutError) as excinfo:
            run_cells(cells, options)
        elapsed = time.monotonic() - start
        assert elapsed < 30  # failed fast, not after the 60s sleeps
        assert sorted(excinfo.value.unfinished) \
            == ["hung-0", "hung-1"]
        assert isinstance(excinfo.value, DeadlineExceeded)

    def test_honest_cells_pass_under_deadline(self):
        cells = [Cell.make("test_sleeper", label=f"ok-{i}",
                           seconds=0.01, tag=f"ok-{i}")
                 for i in range(3)]
        options = EngineOptions(jobs=2, cache=None, progress=False,
                                cell_timeout=30.0)
        results = run_cells(cells, options)
        assert [r["tag"] for r in results] == ["ok-0", "ok-1", "ok-2"]

    def test_deadline_scales_with_rounds(self):
        """Four quick cells on two workers get a two-round budget:
        a per-cell timeout that each cell individually respects must
        not trip even though the batch takes longer than one cell."""
        cells = [Cell.make("test_sleeper", label=f"r-{i}",
                           seconds=0.2, tag=f"r-{i}")
                 for i in range(4)]
        options = EngineOptions(jobs=2, cache=None, progress=False,
                                cell_timeout=5.0)
        results = run_cells(cells, options)
        assert len(results) == 4

    def test_default_is_unbounded(self):
        options = EngineOptions(jobs=2, cache=None, progress=False)
        assert options.cell_timeout is None
        cells = [Cell.make("test_sleeper", label=f"u-{i}",
                           seconds=0.01, tag=f"u-{i}")
                 for i in range(2)]
        assert len(run_cells(cells, options)) == 2
