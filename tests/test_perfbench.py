"""Tests for repro.perfbench: the core throughput benchmark."""

import json
import pstats

import pytest

from repro.cli import main
from repro.experiments import registry
from repro.perfbench.harness import WORKLOADS, run_perfbench

#: Smallest meaningful run: op floors kick in, the warm-up fill still
#: dominates, each workload finishes in well under a second.
TINY = dict(scale=0.01, workloads=["fig8_write"])


class TestHarness:
    def test_all_workloads_timed(self):
        result = run_perfbench(scale=0.01)
        assert set(result.timings) == set(WORKLOADS)
        for timing in result.timings.values():
            assert timing.events > 0
            assert timing.host_ops > 0
            assert timing.wall_seconds > 0
            assert timing.events_per_sec > 0
            assert timing.host_ops_per_sec > 0

    def test_workload_subset_and_order(self):
        result = run_perfbench(scale=0.01,
                               workloads=["zipf_mix", "fig8_write"])
        assert list(result.timings) == ["zipf_mix", "fig8_write"]

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            run_perfbench(scale=0.01, workloads=["nope"])

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ValueError):
            run_perfbench(scale=0.0)

    def test_summary_and_floor(self):
        result = run_perfbench(**TINY, floor=1.0)
        assert result.passed()
        assert result.min_events_per_sec() <= result.median_events_per_sec()
        failing = run_perfbench(**TINY, floor=1e12)
        assert not failing.passed()

    def test_json_projection_schema(self):
        result = run_perfbench(**TINY, floor=1.0)
        payload = result.to_dict()
        assert payload["ftl"] == "flexFTL"
        assert payload["track_history"] is False
        assert set(payload["workloads"]) == {"fig8_write"}
        assert payload["summary"]["min_events_per_sec"] > 0
        assert payload["floor"]["passed"] is True
        json.dumps(payload)  # must be JSON-serializable as-is

    def test_output_file_written(self, tmp_path):
        out = tmp_path / "bench.json"
        result = run_perfbench(**TINY, output_path=str(out))
        assert json.loads(out.read_text()) == json.loads(
            json.dumps(result.to_dict()))

    def test_profile_stats_dumped(self, tmp_path):
        prof = tmp_path / "bench.prof"
        result = run_perfbench(**TINY, profile_path=str(prof))
        assert result.profile_path == str(prof)
        stats = pstats.Stats(str(prof))
        assert stats.total_calls > 0

    def test_render_mentions_every_workload(self):
        result = run_perfbench(scale=0.01)
        report = result.render()
        for name in WORKLOADS:
            assert name in report
        assert "events/s" in report

    def test_deterministic_event_counts(self):
        first = run_perfbench(**TINY)
        second = run_perfbench(**TINY)
        one, two = (r.timings["fig8_write"] for r in (first, second))
        assert one.events == two.events
        assert one.host_ops == two.host_ops


class TestCli:
    def test_registered_in_registry(self):
        assert "perfbench" in {e.name for e in registry.all_experiments()}

    def test_quick_run(self, capsys):
        assert main(["perfbench", "--quick",
                     "--workloads", "fig8_write"]) == 0
        out = capsys.readouterr().out
        assert "fig8_write" in out
        assert "events/s" in out

    def test_json_output(self, capsys):
        assert main(["perfbench", "--scale", "0.01",
                     "--workloads", "fig8_write", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scale"] == 0.01
        assert "fig8_write" in payload["workloads"]

    def test_floor_failure_exit_code(self, capsys):
        argv = ["perfbench", "--scale", "0.01",
                "--workloads", "fig8_write", "--floor"]
        assert main(argv + ["1"]) == 0
        assert main(argv + ["1000000000000"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_unknown_workload_is_a_cli_error(self, capsys):
        assert main(["perfbench", "--workloads", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_full_history_flag(self, capsys):
        assert main(["perfbench", "--scale", "0.01",
                     "--workloads", "fig8_write",
                     "--full-history", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["track_history"] is True


class TestScaleSweep:
    def test_sweep_geometry_shapes(self):
        from repro.perfbench.harness import sweep_geometry

        g1, g4, g16 = (sweep_geometry(m) for m in (1, 4, 16))
        assert (g1.channels, g1.chips_per_channel) == (4, 2)
        assert (g4.channels, g4.chips_per_channel) == (8, 4)
        assert (g16.channels, g16.chips_per_channel) == (16, 8)
        # Chip count scales linearly with the multiplier.
        assert g4.channels * g4.chips_per_channel == 4 * 8
        assert g16.channels * g16.chips_per_channel == 16 * 8

    def test_non_square_multiplier_rejected(self):
        from repro.perfbench.harness import sweep_geometry

        for bad in (0, -1, 2, 3, 8):
            with pytest.raises(ValueError, match="perfect square"):
                sweep_geometry(bad)

    def test_tiny_sweep_end_to_end(self, tmp_path):
        from repro.perfbench.harness import run_scale_sweep

        out = tmp_path / "sweep.json"
        result = run_scale_sweep(scale=0.01, rounds=1,
                                 multipliers=(1, 4),
                                 output_path=str(out))
        assert [p.multiplier for p in result.points] == [1, 4]
        for point in result.points:
            assert point.events > 0
            assert len(point.new) == len(point.baseline) == 1
            assert point.speedup() > 0
        payload = result.to_dict()
        assert payload["kernel"] == "calendar"
        assert payload["stepping"] == "auto"
        assert [p["multiplier"] for p in payload["points"]] == [1, 4]
        assert json.loads(out.read_text()) == json.loads(
            json.dumps(payload))
        report = result.render()
        assert "1x" in report and "4x" in report

    def test_sweep_rejects_bad_inputs(self):
        from repro.perfbench.harness import run_scale_sweep

        with pytest.raises(KeyError):
            run_scale_sweep(workload="nope", scale=0.01, rounds=1,
                            multipliers=(1,))
        with pytest.raises(ValueError):
            run_scale_sweep(scale=0.0, rounds=1, multipliers=(1,))
        with pytest.raises(ValueError):
            run_scale_sweep(scale=0.01, rounds=0, multipliers=(1,))

    def test_cli_sweep(self, capsys):
        assert main(["perfbench", "--scale-sweep", "--scale", "0.01",
                     "--rounds", "1", "--sweep-multipliers", "1",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [p["multiplier"] for p in payload["points"]] == [1]

    def test_cli_sweep_and_trace_overhead_conflict(self, capsys):
        assert main(["perfbench", "--scale-sweep",
                     "--trace-overhead"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_cli_bad_multipliers(self, capsys):
        assert main(["perfbench", "--scale-sweep",
                     "--sweep-multipliers", "1,x"]) == 2
        assert "sweep-multipliers" in capsys.readouterr().err

    def test_cli_kernel_flag_reaches_result(self, capsys):
        assert main(["perfbench", "--scale", "0.01",
                     "--workloads", "fig8_write", "--kernel", "heap",
                     "--stepping", "event", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernel"] == "heap"
        assert payload["stepping"] == "event"


class TestCommittedBenchGuards:
    """The committed BENCH_*.json artifacts must be self-consistent.

    A guard file that records ``passed: false``, or a trace-overhead
    file judged against a budget other than the one the CLI defaults
    to, means the committed evidence no longer backs the claims made
    in the docs and CI comments (the PR-5 file briefly had exactly
    that skew: judged at 3%, CI enforcing 30%).
    """

    def test_committed_guards_pass_their_recorded_budget(self):
        from pathlib import Path

        from repro.perfbench.harness import (
            PHYSICS_OVERHEAD_BUDGET_PCT,
            TRACE_OVERHEAD_BUDGET_PCT,
        )

        root = Path(__file__).resolve().parent.parent
        bench_files = sorted(root.glob("BENCH_*.json"))
        assert bench_files, "no committed BENCH_*.json found"
        for path in bench_files:
            payload = json.loads(path.read_text())
            summary = payload.get("summary", {})
            if "budget_pct" in summary:  # overhead artifact
                assert summary["passed"] is True, (
                    f"{path.name} records passed: false — regenerate "
                    f"it or fix the regression it documents")
                # Physics-overhead artifacts carry the stress block;
                # everything else is a trace-overhead artifact.
                enforced = (PHYSICS_OVERHEAD_BUDGET_PCT
                            if "physics" in payload
                            else TRACE_OVERHEAD_BUDGET_PCT)
                assert summary["budget_pct"] == enforced, (
                    f"{path.name} judged at {summary['budget_pct']}%, "
                    f"but the enforced default is {enforced}%")
