"""Streaming-replay tests: bounded memory, host semantics, perfbench.

The headline assertion is the PR's acceptance criterion: a >= 1M-op
on-disk trace replays through the streaming host without materializing
the request list — a periodic census of live ``Request`` objects
during the replay stays orders of magnitude below the trace length
(a materialized replay would hold all million at once).

Also covers: the streaming trace host's single-op lookahead and
out-of-order detection, end-to-end equivalence of replay-from-CSV with
direct generation, the streaming ``iter_trace`` loader, and the
``scenario_replay`` perfbench case.
"""

import csv
import gc
import json

import pytest

from repro.experiments.runner import (
    ExperimentConfig,
    experiment_span,
    run_workload,
)
from repro.nand.geometry import NandGeometry
from repro.scenarios import (
    StreamingTraceReplayHost,
    TraceScenario,
    iter_scenario_csv,
    make_preset,
    write_scenario_csv,
)
from repro.sim.kernel import Simulator
from repro.sim.queues import Request, RequestKind
from repro.workloads.trace import iter_trace, load_trace

TEST_CONFIG = ExperimentConfig(
    geometry=NandGeometry(channels=2, chips_per_channel=2,
                          blocks_per_chip=16, pages_per_block=16,
                          page_size=2048),
    buffer_pages=64,
)

#: The acceptance threshold's op count.
MILLION = 1_000_000

#: Live-Request ceiling during the streaming replay.  The streaming
#: path holds one look-ahead request plus whatever transiently awaits
#: garbage collection between census points; a materialized replay
#: would hold all :data:`MILLION`.
BOUNDED_LIVE_REQUESTS = 1_000


class _CountingController:
    """Submit sink: completes nothing, just counts arrivals."""

    def __init__(self) -> None:
        self.submitted = 0

    def submit(self, request: Request) -> None:
        self.submitted += 1


def _write_million_op_csv(path, ops=MILLION):
    """Hand-write an open-mode trace CSV of ``ops`` rows."""
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["#meta", json.dumps(
            {"schema": 1, "name": "million", "mode": "open"})])
        writer.writerow(["seq", "time", "op", "phase", "payload"])
        for seq in range(ops):
            writer.writerow([
                seq, repr(seq * 1e-6), "W" if seq % 3 else "R", "",
                '{"lpn":%d,"npages":1}' % (seq % 4096),
            ])
    return path


def _live_requests() -> int:
    """Count Request instances currently alive on the heap."""
    gc.collect()
    return sum(isinstance(obj, Request) for obj in gc.get_objects())


@pytest.mark.slow
class TestBoundedMemoryReplay:
    def test_million_op_trace_replays_in_bounded_memory(self, tmp_path):
        path = _write_million_op_csv(tmp_path / "million.csv")
        trace = TraceScenario(path)
        sim = Simulator()
        controller = _CountingController()

        census = []

        def sampling(requests):
            for index, request in enumerate(requests):
                if index % 250_000 == 0:
                    census.append(_live_requests())
                yield request

        host = StreamingTraceReplayHost(sim, controller,
                                        sampling(trace.requests()))
        host.start()
        sim.run()
        assert host.issued == MILLION
        assert controller.submitted == MILLION
        # Four mid-replay censuses: had the replay materialized the
        # trace, the later ones would count hundreds of thousands of
        # live Requests instead of a handful.
        assert len(census) == 4
        assert max(census) < BOUNDED_LIVE_REQUESTS


class TestStreamingTraceReplayHost:
    def _requests(self, times):
        return iter(Request(t, RequestKind.WRITE, i, 1)
                    for i, t in enumerate(times))

    def test_arrivals_fire_at_trace_times(self):
        sim = Simulator()
        controller = _CountingController()
        arrivals = []
        controller.submit = \
            lambda req: arrivals.append((sim.now, req.lpn))
        host = StreamingTraceReplayHost(
            sim, controller, self._requests([0.0, 0.5, 0.5, 2.0]))
        host.start()
        sim.run()
        assert arrivals == [(0.0, 0), (0.5, 1), (0.5, 2), (2.0, 3)]

    def test_out_of_order_trace_rejected(self):
        sim = Simulator()
        host = StreamingTraceReplayHost(
            sim, _CountingController(),
            self._requests([0.0, 1.0, 0.5]))
        host.start()
        with pytest.raises(ValueError, match="request 2"):
            sim.run()

    def test_empty_trace_is_a_noop(self):
        sim = Simulator()
        host = StreamingTraceReplayHost(sim, _CountingController(),
                                        iter(()))
        host.start()
        sim.run()
        assert host.issued == 0


class TestReplayEquivalence:
    def test_csv_replay_equals_direct_generation(self, tmp_path):
        span = experiment_span(TEST_CONFIG, utilization=0.5)
        scenario = make_preset("varmail", span, 300, seed=3)
        path = tmp_path / "varmail.csv"
        write_scenario_csv(scenario, path)
        direct = run_workload(ftl_name="flexFTL", scenario=scenario,
                              config=TEST_CONFIG)
        replayed = run_workload(ftl_name="flexFTL",
                                scenario=TraceScenario(path),
                                config=TEST_CONFIG)
        assert json.dumps(direct.to_dict(), sort_keys=True) == \
            json.dumps(replayed.to_dict(), sort_keys=True)

    def test_streaming_parse_never_materializes(self, tmp_path):
        # iter_scenario_csv is a generator: pulling three ops of a
        # large file must not read the rest.
        scenario = make_preset("oltp", 2048, 2000, seed=1)
        path = tmp_path / "oltp.csv"
        write_scenario_csv(scenario, path)
        iterator = iter_scenario_csv(path)
        first = [next(iterator) for _ in range(3)]
        assert len(first) == 3
        iterator.close()  # no full parse happened


class TestIterTrace:
    def test_iter_trace_streams_lazily(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# time op lpn npages\n"
                        "0.0 W 1 4\n0.5 R 2 1\n1.0 W 3 2\n")
        iterator = iter_trace(path)
        first = next(iterator)
        assert first.lpn == 1 and first.kind is RequestKind.WRITE
        assert [r.lpn for r in iterator] == [2, 3]

    def test_load_trace_materializes_iter_trace(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0.0 W 1 4 victim\n0.5 R 2 1 -\n")
        assert load_trace(path) == list(iter_trace(path))

    def test_conversion_errors_carry_line_numbers(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0.0 W 1 1\nnope W 2 1\n")
        with pytest.raises(ValueError, match=r"trace\.txt:2"):
            list(iter_trace(path))
        path.write_text("0.0 W many 1\n")
        with pytest.raises(ValueError, match=r"trace\.txt:1"):
            list(iter_trace(path))


class TestPerfbenchScenarioReplay:
    def test_scenario_replay_case_runs(self):
        from repro.perfbench.harness import run_perfbench

        result = run_perfbench(workloads=["scenario_replay"],
                               scale=0.05)
        timing = result.timings["scenario_replay"]
        assert timing.events > 0
        assert timing.host_ops > 0
        assert timing.events_per_sec > 0

    def test_unknown_workload_still_rejected(self):
        from repro.perfbench.harness import run_perfbench

        with pytest.raises(KeyError):
            run_perfbench(workloads=["scenario_warp"])
