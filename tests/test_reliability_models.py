"""Tests for repro.reliability vth/ber/montecarlo models."""

import numpy as np
import pytest

from repro.reliability.ber import (
    OperatingCondition,
    StressModel,
    WORST_CASE,
    page_bit_error_rate,
)
from repro.reliability.montecarlo import (
    BoxStats,
    ORDER_FACTORIES,
    compare_schemes,
    run_reliability_experiment,
)
from repro.reliability.vth import (
    GRAY_CODE,
    MlcVthModel,
    bit_errors,
    read_states,
    simulate_page_vth,
)


class TestVthModel:
    def test_default_model_is_consistent(self):
        model = MlcVthModel()
        assert len(model.state_centers) == 4
        assert len(model.read_refs) == 3
        # refs interleave the state centres
        for i, ref in enumerate(model.read_refs):
            assert model.state_centers[i] < ref < model.state_centers[i + 1]

    def test_invalid_coupling_rejected(self):
        with pytest.raises(ValueError):
            MlcVthModel(coupling_ratio=0.0)
        with pytest.raises(ValueError):
            MlcVthModel(coupling_ratio=1.5)

    def test_fresh_page_reads_back_clean(self):
        rng = np.random.default_rng(0)
        sample = simulate_page_vth(0, rng=rng)
        assert bit_errors(sample) == 0

    def test_aggressors_widen_distributions(self):
        rng = np.random.default_rng(1)
        quiet = simulate_page_vth(0, rng=rng).total_width()
        rng = np.random.default_rng(1)
        noisy = simulate_page_vth(4, rng=rng).total_width()
        assert noisy > quiet

    def test_aggressors_shift_right(self):
        rng = np.random.default_rng(2)
        base = simulate_page_vth(0, rng=rng)
        rng = np.random.default_rng(2)
        shifted = simulate_page_vth(3, rng=rng)
        assert shifted.vth.mean() > base.vth.mean()

    def test_state_widths_cover_all_states(self):
        rng = np.random.default_rng(3)
        sample = simulate_page_vth(1, rng=rng)
        widths = sample.state_widths()
        assert len(widths) == 4
        assert all(w > 0 for w in widths)
        # the erased state is intrinsically wider than programmed ones
        assert widths[0] > widths[1]

    def test_gray_code_adjacent_states_differ_by_one_bit(self):
        for a, b in zip(GRAY_CODE, GRAY_CODE[1:]):
            assert sum(x != y for x, y in zip(a, b)) == 1

    def test_read_states_uses_refs(self):
        rng = np.random.default_rng(4)
        sample = simulate_page_vth(0, rng=rng)
        observed = read_states(sample)
        assert (observed == sample.states).mean() > 0.999


class TestStress:
    def test_worst_case_condition(self):
        assert WORST_CASE.pe_cycles == 3000
        assert WORST_CASE.retention_hours == pytest.approx(24 * 365)

    def test_negative_condition_rejected(self):
        with pytest.raises(ValueError):
            OperatingCondition(pe_cycles=-1)
        with pytest.raises(ValueError):
            OperatingCondition(retention_hours=-1.0)

    def test_cycling_adds_noise(self):
        stress = StressModel()
        assert stress.extra_sigma(WORST_CASE) > 0
        assert stress.extra_sigma(OperatingCondition()) == 0

    def test_retention_shifts_down(self):
        stress = StressModel()
        assert stress.retention_shift(WORST_CASE) < 0
        assert stress.retention_shift(OperatingCondition()) == 0.0

    def test_cycling_amplifies_retention(self):
        stress = StressModel()
        mild = stress.retention_shift(
            OperatingCondition(0, 24 * 365))
        harsh = stress.retention_shift(
            OperatingCondition(3000, 24 * 365))
        assert harsh < mild < 0

    def test_stress_raises_ber(self):
        rng = np.random.default_rng(5)
        fresh = page_bit_error_rate(
            1, OperatingCondition(), rng=rng)
        rng = np.random.default_rng(5)
        stressed = page_bit_error_rate(1, WORST_CASE, rng=rng)
        assert stressed >= fresh


class TestMonteCarlo:
    def test_boxstats_from_samples(self):
        stats = BoxStats.from_samples([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.minimum == 1.0
        assert stats.median == 3.0
        assert stats.maximum == 5.0
        assert stats.mean == 3.0

    def test_boxstats_rejects_empty(self):
        with pytest.raises(ValueError):
            BoxStats.from_samples([])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            run_reliability_experiment("bogus")

    def test_population_size(self):
        result = run_reliability_experiment("FPS", blocks=4, wordlines=8)
        assert len(result.wpi_samples) == 4 * 8
        assert len(result.ber_samples) == 4 * 8

    def test_experiment_is_deterministic(self):
        a = run_reliability_experiment("RPSfull", blocks=3, wordlines=8,
                                       seed=7)
        b = run_reliability_experiment("RPSfull", blocks=3, wordlines=8,
                                       seed=7)
        assert np.array_equal(a.wpi_samples, b.wpi_samples)
        assert np.array_equal(a.ber_samples, b.ber_samples)

    def test_figure4_shape(self):
        """The headline reliability result at a reduced population."""
        results = compare_schemes(
            schemes=("FPS", "RPSfull", "RPShalf", "unconstrained"),
            blocks=10, wordlines=16, seed=11,
        )
        fps = results["FPS"]
        for scheme in ("RPSfull", "RPShalf"):
            rps = results[scheme]
            assert rps.wpi.median <= fps.wpi.median * 1.02
            assert rps.ber.median <= fps.ber.median * 1.02 + 1e-5
        unconstrained = results["unconstrained"]
        assert unconstrained.wpi.median > fps.wpi.median
        assert unconstrained.ber.median > fps.ber.median

    def test_aggressor_histograms(self):
        results = compare_schemes(schemes=("FPS", "unconstrained"),
                                  blocks=5, wordlines=16, seed=3)
        assert set(results["FPS"].aggressor_histogram) <= {0, 1}
        assert max(results["unconstrained"].aggressor_histogram) > 1

    def test_all_registered_factories_run(self):
        for scheme in ORDER_FACTORIES:
            result = run_reliability_experiment(scheme, blocks=1,
                                                wordlines=4)
            assert len(result.wpi_samples) > 0
