"""Property-based tests for the backup-block manager.

Random allocate/invalidate sequences must preserve the manager's
invariants: live slots always point at distinct pages of the blocks
the manager owns, recycling erases exactly one block and relocates
exactly the live parities that lived there, and the slot cursor never
exceeds the block's slot budget.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ftl.backup import BackupBlockManager

WORDLINES = 4

# At most 3 distinct owners: a block offers `WORDLINES` (4) slots, so
# up to 3 live parities always leave room for a relocation + 1 new
# slot.  (Overflowing the pool raises a documented RuntimeError,
# covered separately below.)
operations = st.lists(
    st.tuples(st.sampled_from(["alloc", "drop"]),
              st.integers(min_value=0, max_value=2)),
    max_size=60,
)


class TestBackupManagerInvariants:
    @given(ops=operations, blocks=st.integers(min_value=1, max_value=3))
    @settings(max_examples=80, deadline=None)
    def test_live_slots_stay_unique_and_in_bounds(self, ops, blocks):
        manager = BackupBlockManager(list(range(10, 10 + blocks)),
                                     WORDLINES, order="lsb")
        erases = 0
        for action, owner in ops:
            if action == "alloc":
                slot, cycle = manager.allocate(owner)
                if cycle is not None:
                    erases += 1
                    # relocations re-home only that block's live slots
                    for _, new_slot in cycle.relocations:
                        assert new_slot.block == cycle.erase_block
            else:
                manager.invalidate(owner)
            # invariants after every step
            live = [manager.slot_of(o) for o in range(6)
                    if manager.slot_of(o) is not None]
            positions = [(s.block, s.page) for s in live]
            assert len(positions) == len(set(positions)), \
                "two owners share a parity page"
            for s in live:
                assert s.block in manager.block_ids
                assert 0 <= s.page < 2 * WORDLINES
        assert manager.cycles == erases
        assert manager.live_count <= 6

    def test_pool_overflow_raises_clearly(self):
        """Live parities filling a whole block exhaust the pool; the
        manager must say so instead of corrupting state."""
        import pytest

        manager = BackupBlockManager([1], WORDLINES, order="lsb")
        for owner in range(WORDLINES):
            manager.allocate(owner)  # all slots live
        with pytest.raises(RuntimeError, match="exhausted"):
            manager.allocate("one too many")

    @given(ops=st.integers(min_value=1, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_single_owner_rolls_forever(self, ops):
        """One owner re-allocating repeatedly (parityFTL's rolling
        2-LSB parity) must always succeed and keep exactly one live
        slot, no matter how many block recycles that takes."""
        manager = BackupBlockManager([1, 2], WORDLINES, order="lsb")
        for _ in range(ops):
            slot, _ = manager.allocate("block-7")
            assert manager.live_count == 1
            assert manager.slot_of("block-7") == slot
