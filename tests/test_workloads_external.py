"""Tests for external block-trace import (repro.workloads.external)."""

import pytest

from repro.sim.queues import RequestKind
from repro.workloads.external import fit_trace, load_msr_trace


def write_csv(path, lines):
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


class TestMsrLoader:
    def test_basic_parse(self, tmp_path):
        path = write_csv(tmp_path / "t.csv", [
            "10000000,host,0,Write,8192,4096,123",
            "20000000,host,0,Read,0,8192,77",
        ])
        requests = load_msr_trace(path, page_size=4096)
        assert len(requests) == 2
        first, second = requests
        assert first.time == pytest.approx(0.0)  # rebased
        assert first.kind is RequestKind.WRITE
        assert first.lpn == 2
        assert first.npages == 1
        assert second.time == pytest.approx(1.0)  # 10M ticks = 1 s
        assert second.kind is RequestKind.READ
        assert second.npages == 2

    def test_unaligned_requests_page_rounded(self, tmp_path):
        path = write_csv(tmp_path / "t.csv", [
            "0,h,0,Write,1000,5000,0",  # bytes 1000..5999 -> pages 0-1
        ])
        requests = load_msr_trace(path, page_size=4096)
        assert requests[0].lpn == 0
        assert requests[0].npages == 2

    def test_zero_size_records_skipped(self, tmp_path):
        path = write_csv(tmp_path / "t.csv", [
            "0,h,0,Write,0,0,0",
            "1,h,0,Write,0,4096,0",
        ])
        assert len(load_msr_trace(path)) == 1

    def test_max_requests(self, tmp_path):
        path = write_csv(tmp_path / "t.csv", [
            f"{i},h,0,Write,0,4096,0" for i in range(10)
        ])
        assert len(load_msr_trace(path, max_requests=3)) == 3

    def test_malformed_rejected(self, tmp_path):
        path = write_csv(tmp_path / "t.csv", ["1,2,3"])
        with pytest.raises(ValueError):
            load_msr_trace(path)
        path = write_csv(tmp_path / "t.csv", ["0,h,0,Erase,0,4096,0"])
        with pytest.raises(ValueError):
            load_msr_trace(path)

    def test_output_time_sorted(self, tmp_path):
        path = write_csv(tmp_path / "t.csv", [
            "30000000,h,0,Write,0,4096,0",
            "10000000,h,0,Write,4096,4096,0",
        ])
        requests = load_msr_trace(path)
        times = [request.time for request in requests]
        assert times == sorted(times)


class TestFitTrace:
    def test_addresses_folded_into_logical_space(self, tmp_path):
        path = write_csv(tmp_path / "t.csv", [
            "0,h,0,Write,0,4096,0",
            "1,h,0,Write,999999999488,4096,0",
        ])
        requests = load_msr_trace(path)
        fitted = fit_trace(requests, logical_pages=1000)
        assert all(r.lpn < 1000 for r in fitted)
        assert all(r.lpn + r.npages <= 1000 for r in fitted)

    def test_lengths_clipped(self, tmp_path):
        path = write_csv(tmp_path / "t.csv", [
            "0,h,0,Write,0,1048576,0",  # 256 pages
        ])
        requests = load_msr_trace(path)
        fitted = fit_trace(requests, logical_pages=10_000, max_npages=16)
        assert fitted[0].npages == 16

    def test_time_scaling(self, tmp_path):
        path = write_csv(tmp_path / "t.csv", [
            "0,h,0,Write,0,4096,0",
            "100000000,h,0,Write,0,4096,0",  # +10 s
        ])
        requests = load_msr_trace(path)
        fitted = fit_trace(requests, logical_pages=100, time_scale=0.1)
        assert fitted[1].time == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_trace([], logical_pages=0)
        with pytest.raises(ValueError):
            fit_trace([], logical_pages=10, time_scale=0.0)

    def test_input_not_mutated(self, tmp_path):
        path = write_csv(tmp_path / "t.csv", [
            "0,h,0,Write,999999995904,4096,0",
        ])
        requests = load_msr_trace(path)
        original_lpn = requests[0].lpn
        fit_trace(requests, logical_pages=100)
        assert requests[0].lpn == original_lpn
