"""Tests for the bad-block table and block-retirement machinery."""

import pytest

from repro.core.flexftl import FlexFtl
from repro.faults.badblocks import BadBlockManager
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.ftl.base import FtlConfig
from repro.ftl.pageftl import PageFtl
from repro.nand.geometry import NandGeometry
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.queues import RequestKind

from tests.helpers import build_small_system

GEOMETRY = NandGeometry(channels=2, chips_per_channel=2,
                        blocks_per_chip=16, pages_per_block=16,
                        page_size=512)


def write_stream(count, span, stride=3):
    return [StreamOp(RequestKind.WRITE, (i * stride) % span, 1)
            for i in range(count)]


class TestBadBlockManager:
    def test_retire_hands_out_spares_fifo(self):
        manager = BadBlockManager(spare_blocks=[10, 11])
        assert manager.retire(3) == 10
        assert manager.retire(4) == 11
        assert manager.grown == [3, 4]
        assert manager.spares_consumed == 2

    def test_retire_exhausts_then_returns_none(self):
        manager = BadBlockManager(spare_blocks=[10])
        assert not manager.exhausted
        assert manager.retire(3) == 10
        assert manager.exhausted
        assert manager.retire(4) is None
        assert manager.spares_remaining == 0
        # the block is still recorded even without a replacement
        assert manager.is_bad(4)

    def test_double_retire_records_once(self):
        manager = BadBlockManager(spare_blocks=[10, 11])
        manager.retire(3)
        manager.retire(3)
        assert manager.grown == [3]
        # ...but each retirement call still costs a spare (the FTL
        # never double-retires; this documents the contract).
        assert manager.spares_consumed == 2

    def test_factory_bad_table(self):
        manager = BadBlockManager(spare_blocks=[10], factory_bad=[0])
        assert manager.is_bad(0)
        assert not manager.is_bad(5)
        assert manager.mark_factory_bad(5) == 10
        assert manager.is_bad(5)
        assert manager.mark_factory_bad(6) is None

    def test_empty_reserve_is_exhausted_from_the_start(self):
        manager = BadBlockManager()
        assert manager.exhausted
        assert manager.retire(1) is None


class TestFtlRetirement:
    def _run_with_program_failure(self, ftl_cls, spares, fail_index=40):
        config = FtlConfig(spare_blocks_per_chip=spares)
        system = build_small_system(ftl_cls, GEOMETRY, buffer_pages=32,
                                    ftl_config=config)
        sim, array, buffer, ftl, controller = system
        plan = FaultPlan(events=(
            FaultEvent("program_fail", chip=0, op_index=fail_index),))
        controller.attach_fault_injector(
            FaultInjector(plan, page_size=GEOMETRY.page_size))
        host = ClosedLoopHost(sim, controller,
                              [write_stream(400, span=300)])
        host.start()
        sim.run()
        return ftl, controller

    @pytest.mark.parametrize("ftl_cls", [PageFtl, FlexFtl])
    def test_program_failure_retires_block_and_consumes_spare(
            self, ftl_cls):
        ftl, controller = self._run_with_program_failure(ftl_cls,
                                                         spares=2)
        faults = controller.stats.faults
        assert faults.program_failures == 1
        assert faults.retired_blocks == 1
        assert faults.spares_consumed == 1
        assert not faults.degraded_mode
        assert not controller.read_only
        # the grown-bad table on chip 0 holds the failed block
        assert len(ftl.chips[0].bad_blocks.grown) == 1
        bad = ftl.chips[0].bad_blocks.grown[0]
        # ...which is out of every allocation pool
        assert bad not in ftl.chips[0].free_blocks
        assert bad not in ftl.chips[0].full_blocks

    def test_spare_exhaustion_degrades_to_read_only(self):
        ftl, controller = self._run_with_program_failure(PageFtl,
                                                         spares=0)
        faults = controller.stats.faults
        assert faults.retired_blocks == 1
        assert faults.spares_consumed == 0
        assert ftl.degraded
        assert controller.read_only
        assert faults.degraded_mode

    def test_factory_bad_blocks_never_allocated(self):
        config = FtlConfig(spare_blocks_per_chip=2)
        system = build_small_system(PageFtl, GEOMETRY, buffer_pages=32,
                                    ftl_config=config)
        sim, array, buffer, ftl, controller = system
        ftl.mark_factory_bad(0, 3)
        host = ClosedLoopHost(sim, controller,
                              [write_stream(600, span=300)])
        host.start()
        sim.run()
        # nothing was ever programmed into the factory-bad block
        assert array.chips[0].blocks[3].programmed_count() == 0
        assert ftl.chips[0].bad_blocks.is_bad(3)

    def test_factory_bad_must_be_marked_before_traffic(self):
        system = build_small_system(PageFtl, GEOMETRY, buffer_pages=32)
        sim, array, buffer, ftl, controller = system
        ftl.mark_factory_bad(0, 5)
        with pytest.raises(ValueError):
            ftl.mark_factory_bad(0, 5)  # no longer free
        with pytest.raises(ValueError):
            ftl.mark_factory_bad(0, GEOMETRY.blocks_per_chip + 1)
