"""Tests for the Scenario API: generator, presets, specs, runners.

Covers the PR's contract points: phase-table validation, state-
conditioned generation (sequential runs, re-reads, idle stretching),
cross-process determinism of the seeded generator, spec round-trips
through the engine's JSON encoding, the declared-vs-generated read-mix
audit of every preset, the legacy ``streams=`` adapter (deprecation
warning plus byte-identical results), and serial == parallel == cached
equivalence of the ``scenario_grid`` experiment.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.engine import EngineOptions, ResultCache
from repro.experiments.runner import (
    ExperimentConfig,
    coerce_scenario,
    experiment_span,
    run_workload,
)
from repro.experiments.scenario_grid import (
    measured_read_fraction,
    run_scenario_grid,
)
from repro.nand.geometry import NandGeometry
from repro.scenarios import (
    Phase,
    PRESETS,
    Scenario,
    ScenarioOp,
    StreamScenario,
    TenantBinding,
    WorkloadScenario,
    as_scenario,
    make_preset,
    scenario_from_spec,
    scenario_seed,
)
from repro.sim.queues import RequestKind
from repro.workloads.benchmarks import build_workload

#: Small device so scenario tests stay fast.
TEST_CONFIG = ExperimentConfig(
    geometry=NandGeometry(channels=2, chips_per_channel=2,
                          blocks_per_chip=16, pages_per_block=16,
                          page_size=2048),
    buffer_pages=64,
)


def _tiny(name="tiny", ops=60, streams=2, seed=7, **phase_kwargs):
    phase_kwargs.setdefault("read_fraction", 0.5)
    phase = Phase(name="steady", kind="steady", ops=ops,
                  **phase_kwargs)
    return WorkloadScenario(name=name, footprint=256, streams=streams,
                            phases=(phase,), seed=seed)


class TestPhaseValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Phase(name="x", kind="warp", ops=10)

    def test_probabilities_bounded(self):
        for field in ("read_fraction", "seq", "hot", "read_recent"):
            with pytest.raises(ValueError, match=field):
                Phase(name="x", ops=10, **{field: 1.5})

    def test_steady_needs_ops(self):
        with pytest.raises(ValueError, match="ops"):
            Phase(name="x", kind="steady", ops=0)

    def test_burst_needs_burst_len(self):
        with pytest.raises(ValueError, match="burst_len"):
            Phase(name="x", kind="burst", ops=10, burst_len=0)

    def test_idle_needs_duration(self):
        with pytest.raises(ValueError, match="idle"):
            Phase(name="x", kind="idle")

    def test_npages_weights_must_match(self):
        with pytest.raises(ValueError, match="npages_weights"):
            Phase(name="x", ops=10, npages=(1, 2),
                  npages_weights=(1.0,))

    def test_dict_round_trip(self):
        phase = Phase(name="b", kind="burst", ops=100,
                      read_fraction=0.3, npages=(1, 4),
                      npages_weights=(3.0, 1.0), burst_len=8,
                      burst_idle=0.1, zipf_s=0.9)
        assert Phase.from_dict(phase.to_dict()) == phase


class TestWorkloadScenarioValidation:
    def test_bad_shape_rejected(self):
        phase = Phase(name="s", ops=10)
        with pytest.raises(ValueError, match="footprint"):
            WorkloadScenario("x", 0, 1, (phase,))
        with pytest.raises(ValueError, match="streams"):
            WorkloadScenario("x", 64, 0, (phase,))
        with pytest.raises(ValueError, match="phase"):
            WorkloadScenario("x", 64, 1, ())

    def test_tenant_streams_must_sum(self):
        phase = Phase(name="s", ops=10)
        with pytest.raises(ValueError, match="tenant bindings"):
            WorkloadScenario("x", 64, 4, (phase,),
                             tenants=(TenantBinding("a", 3),))


class TestGeneration:
    def test_total_ops_matches_generated_count(self):
        scenario = make_preset("varmail", 512, 300, seed=3, fill=True)
        assert sum(1 for _ in scenario.ops()) == scenario.total_ops

    def test_ops_stay_inside_footprint(self):
        scenario = make_preset("webserver", 300, 400, seed=5)
        for op in scenario.ops():
            assert 0 <= op.lpn
            assert op.lpn + op.npages <= 300

    def test_fill_phase_writes_every_page_once(self):
        phases = (Phase(name="fill", kind="fill", npages=(8,)),)
        scenario = WorkloadScenario("f", 100, 3, phases)
        written = []
        for op in scenario.ops():
            assert op.kind is RequestKind.WRITE
            written.extend(range(op.lpn, op.lpn + op.npages))
        assert sorted(written) == list(range(100))

    def test_sequential_draws_continue_previous_op(self):
        scenario = _tiny(ops=40, streams=1, seq=1.0, read_fraction=0.0,
                         npages=(4,))
        ops = list(scenario.ops())
        for prev, nxt in zip(ops, ops[1:]):
            end = prev.lpn + prev.npages
            assert nxt.lpn == (end if end + nxt.npages <= 256 else 0)

    def test_idle_phase_stretches_preceding_think_time(self):
        phases = (
            Phase(name="a", ops=2, think=0.001),
            Phase(name="gap", kind="idle", idle=0.5),
            Phase(name="b", ops=2, think=0.001),
        )
        scenario = WorkloadScenario("idle", 64, 1, phases, seed=1)
        thinks = [op.think_after for op in scenario.ops()]
        assert thinks == [0.001, pytest.approx(0.501), 0.001, 0.001]

    def test_burst_structure_sets_inter_burst_idle(self):
        phases = (Phase(name="b", kind="burst", ops=12, burst_len=4,
                        burst_idle=0.25),)
        scenario = WorkloadScenario("b", 64, 1, phases, seed=1)
        thinks = [op.think_after for op in scenario.ops()]
        assert thinks == [0.0, 0.0, 0.0, 0.25] * 3

    def test_read_recent_targets_recent_writes(self):
        phases = (Phase(name="m", ops=400, read_fraction=0.5,
                        read_recent=1.0),)
        scenario = WorkloadScenario("mail", 4096, 1, phases, seed=2)
        written = set()
        recent_hits = reads = 0
        for op in scenario.ops():
            if op.kind is RequestKind.WRITE:
                written.add(op.lpn)
            elif written:
                reads += 1
                recent_hits += op.lpn in written
        assert reads > 0 and recent_hits == reads

    def test_phase_tags_follow_schedule(self):
        scenario = make_preset("oltp", 1024, 200, seed=1)
        seen = []
        for op in scenario.ops():
            if op.phase not in seen:
                seen.append(op.phase)
        assert seen == ["ramp", "steady"]

    def test_tenant_tagging_and_grouping(self):
        phases = (Phase(name="s", ops=40, read_fraction=0.5),)
        scenario = WorkloadScenario(
            "qos", 256, 3, phases, seed=1,
            tenants=(TenantBinding("victim", 1),
                     TenantBinding("noisy", 2)))
        grouped = scenario.tenant_streams()
        assert set(grouped) == {"victim", "noisy"}
        assert len(grouped["victim"]) == 1
        assert len(grouped["noisy"]) == 2
        total = sum(len(s) for streams in grouped.values()
                    for s in streams)
        assert total == 40


class TestDeterminism:
    def test_same_seed_same_fingerprint(self):
        a = make_preset("fileserver", 2048, 500, seed=9)
        b = make_preset("fileserver", 2048, 500, seed=9)
        assert a.fingerprint() == b.fingerprint()

    def test_seed_changes_sequence(self):
        a = make_preset("fileserver", 2048, 500, seed=9)
        b = make_preset("fileserver", 2048, 500, seed=10)
        assert a.fingerprint() != b.fingerprint()

    def test_streams_are_seed_independent(self):
        # Stream i's sequence must not depend on how many siblings
        # exist — that is what makes per-tenant slicing stable.
        base = scenario_seed(1, "scenario", "x", 0)
        assert base == scenario_seed(1, "scenario", "x", 0)
        assert base != scenario_seed(1, "scenario", "x", 1)

    def test_fingerprint_stable_across_processes(self):
        scenario = make_preset("varmail", 1024, 300, seed=4)
        code = (
            "from repro.scenarios import make_preset\n"
            "print(make_preset('varmail', 1024, 300, seed=4)"
            ".fingerprint())\n"
        )
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ, PYTHONPATH=str(src))
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True,
            text=True, check=True, env=env,
        )
        assert out.stdout.strip() == scenario.fingerprint()


class TestSpecs:
    def test_workload_spec_round_trip(self):
        scenario = make_preset("oltp", 512, 200, seed=3)
        clone = scenario_from_spec(scenario.spec())
        assert clone.fingerprint() == scenario.fingerprint()

    def test_spec_survives_json(self):
        scenario = make_preset("webserver", 512, 200, seed=3)
        wire = json.loads(json.dumps(scenario.spec(), sort_keys=True))
        assert scenario_from_spec(wire).fingerprint() == \
            scenario.fingerprint()

    def test_stream_spec_round_trip(self):
        streams = build_workload("OLTP", 256, total_ops=60, seed=1)
        scenario = StreamScenario.from_streams(streams, tenant="t0")
        clone = scenario_from_spec(scenario.spec())
        assert clone.fingerprint() == scenario.fingerprint()
        assert clone.tenant == "t0"

    def test_unknown_spec_type_rejected(self):
        with pytest.raises(KeyError, match="spec type"):
            scenario_from_spec({"type": "teleport"})
        with pytest.raises(ValueError, match="'type'"):
            scenario_from_spec({"name": "x"})

    def test_as_scenario_coercions(self):
        scenario = _tiny()
        assert as_scenario(scenario) is scenario
        clone = as_scenario(scenario.spec())
        assert isinstance(clone, Scenario)
        with pytest.raises(TypeError):
            as_scenario(42)


class TestPresets:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_generated_mix_matches_declared(self, name):
        # The acceptance criterion: declared read fraction within 2%
        # of the emitted traffic at the default op count's order.
        scenario = make_preset(name, 4096, 4000, seed=1)
        reads = total = 0
        for op in scenario.ops():
            total += 1
            reads += op.kind is RequestKind.READ
        declared = PRESETS[name].read_fraction
        assert abs(reads / total - declared) < 0.02
        assert scenario.declared_read_fraction() == \
            pytest.approx(declared)

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            make_preset("bogus", 512, 100)
        with pytest.raises(ValueError):
            make_preset("oltp", 512, 0)

    def test_tiny_op_counts_still_build(self):
        for name in PRESETS:
            scenario = make_preset(name, 256, 3, seed=1)
            assert sum(1 for _ in scenario.ops()) == scenario.total_ops

    def test_phase_table_renders(self):
        table = make_preset("varmail", 512, 100).phase_table()
        assert "delivery" in table and "burst" in table


class TestRunnerIntegration:
    def _streams(self):
        span = experiment_span(TEST_CONFIG, utilization=0.5)
        return build_workload("OLTP", span, total_ops=200, seed=1)

    def test_legacy_streams_kwarg_warns(self):
        with pytest.deprecated_call():
            run_workload(ftl_name="pageFTL", streams=self._streams(),
                         config=TEST_CONFIG)

    def test_legacy_adapter_is_byte_identical(self):
        streams = self._streams()
        with pytest.deprecated_call():
            legacy = run_workload(ftl_name="pageFTL", streams=streams,
                                  config=TEST_CONFIG)
        modern = run_workload(
            ftl_name="pageFTL",
            scenario=StreamScenario.from_streams(streams),
            config=TEST_CONFIG)
        assert json.dumps(legacy.to_dict(), sort_keys=True) == \
            json.dumps(modern.to_dict(), sort_keys=True)

    def test_exactly_one_workload_source(self):
        with pytest.raises(TypeError, match="exactly one"):
            run_workload(ftl_name="pageFTL", config=TEST_CONFIG)
        with pytest.raises(TypeError, match="exactly one"):
            run_workload(ftl_name="pageFTL", streams=self._streams(),
                         scenario=_tiny(), config=TEST_CONFIG)
        with pytest.raises(TypeError):
            coerce_scenario(None, None, "caller")

    def test_generator_scenario_runs_end_to_end(self):
        span = experiment_span(TEST_CONFIG, utilization=0.5)
        scenario = make_preset("varmail", span, 400, seed=2)
        result = run_workload(ftl_name="flexFTL", scenario=scenario,
                              config=TEST_CONFIG)
        completed = (result.stats.completed_reads
                     + result.stats.completed_writes)
        assert completed == scenario.total_ops

    def test_spec_dict_accepted_directly(self):
        span = experiment_span(TEST_CONFIG, utilization=0.5)
        scenario = make_preset("oltp", span, 200, seed=2)
        direct = run_workload(ftl_name="pageFTL", scenario=scenario,
                              config=TEST_CONFIG)
        via_spec = run_workload(ftl_name="pageFTL",
                                scenario=scenario.spec(),
                                config=TEST_CONFIG)
        assert direct == via_spec


class TestScenarioGrid:
    def _grid(self, engine=None):
        return run_scenario_grid(
            presets=("oltp", "varmail"), ftls=("pageFTL",),
            total_ops=200, config=TEST_CONFIG, engine=engine)

    def test_serial_parallel_cached_identical(self, tmp_path):
        serial = self._grid(EngineOptions(jobs=1))
        parallel = self._grid(EngineOptions(jobs=2))
        cache = ResultCache(root=tmp_path)
        cold = self._grid(EngineOptions(jobs=1, cache=cache))
        warm = self._grid(EngineOptions(jobs=1, cache=cache))
        assert cache.hits == 2
        dumps = [json.dumps(g.to_dict(), sort_keys=True)
                 for g in (serial, parallel, cold, warm)]
        assert len(set(dumps)) == 1

    def test_mix_audit_within_tolerance(self):
        grid = run_scenario_grid(
            presets=("fileserver",), ftls=("pageFTL",),
            total_ops=4000, config=TEST_CONFIG,
            engine=EngineOptions(jobs=1))
        assert grid.mix_error("fileserver", "pageFTL") < 0.02
        measured = measured_read_fraction(
            grid.result("fileserver", "pageFTL"))
        assert 0.0 < measured < 1.0

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            run_scenario_grid(presets=("bogus",), config=TEST_CONFIG)
