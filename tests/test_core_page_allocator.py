"""Tests for repro.core.page_allocator: policy manager and quota."""

import pytest

from repro.core.page_allocator import (
    PolicyConfig,
    PolicyManager,
    QuotaTracker,
)
from repro.nand.page_types import PageType


def quota(value, cap=None):
    tracker = QuotaTracker(max(value, 0), cap)
    tracker.value = value
    return tracker


class TestQuotaTracker:
    def test_spend_and_earn(self):
        tracker = QuotaTracker(2)
        tracker.note_lsb_write()
        assert tracker.value == 1
        tracker.note_msb_write()
        assert tracker.value == 2

    def test_earn_saturates_at_cap(self):
        tracker = QuotaTracker(2)
        tracker.note_msb_write()
        assert tracker.value == 2

    def test_can_go_negative(self):
        tracker = QuotaTracker(1)
        tracker.note_lsb_write()
        tracker.note_lsb_write()
        assert tracker.value == -1
        assert tracker.exhausted

    def test_reset(self):
        tracker = QuotaTracker(5)
        for _ in range(8):
            tracker.note_lsb_write()
        tracker.reset()
        assert tracker.value == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            QuotaTracker(-1)
        with pytest.raises(ValueError):
            QuotaTracker(5, cap=3)


class TestPolicyConfig:
    def test_paper_defaults(self):
        config = PolicyConfig()
        assert config.u_high == pytest.approx(0.80)
        assert config.u_low == pytest.approx(0.10)
        assert config.quota_fraction == pytest.approx(0.05)

    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            PolicyConfig(u_high=0.1, u_low=0.8)
        with pytest.raises(ValueError):
            PolicyConfig(quota_fraction=0.0)
        with pytest.raises(ValueError):
            PolicyConfig(quota_cap_factor=0.5)


class TestPolicyDecisions:
    def choose(self, manager, u, q, lsb=True, msb=True):
        return manager.choose(u, quota(q), lsb, msb)

    def test_high_u_with_quota_picks_lsb(self):
        manager = PolicyManager()
        for _ in range(5):
            assert self.choose(manager, 0.9, 10) is PageType.LSB

    def test_high_u_without_quota_alternates(self):
        manager = PolicyManager()
        choices = [self.choose(manager, 0.9, 0) for _ in range(4)]
        assert choices == [PageType.LSB, PageType.MSB,
                           PageType.LSB, PageType.MSB]

    def test_low_u_picks_msb(self):
        manager = PolicyManager()
        assert self.choose(manager, 0.05, 10) is PageType.MSB

    def test_mid_u_alternates(self):
        manager = PolicyManager()
        choices = [self.choose(manager, 0.5, 10) for _ in range(4)]
        assert choices == [PageType.LSB, PageType.MSB,
                           PageType.LSB, PageType.MSB]

    def test_corner_case_no_slow_block_uses_lsb(self):
        # Footnote 1: u < u_low but no slow block exists.
        manager = PolicyManager()
        assert self.choose(manager, 0.05, 10, lsb=True, msb=False) \
            is PageType.LSB

    def test_no_lsb_available_uses_msb(self):
        manager = PolicyManager()
        assert self.choose(manager, 0.9, 10, lsb=False, msb=True) \
            is PageType.MSB

    def test_nothing_available_returns_none(self):
        manager = PolicyManager()
        assert self.choose(manager, 0.9, 10, lsb=False, msb=False) is None

    def test_decision_accounting(self):
        manager = PolicyManager()
        self.choose(manager, 0.9, 10)
        self.choose(manager, 0.05, 10)
        assert manager.decisions[PageType.LSB] == 1
        assert manager.decisions[PageType.MSB] == 1

    def test_custom_thresholds(self):
        manager = PolicyManager(PolicyConfig(u_high=0.5, u_low=0.2))
        assert self.choose(manager, 0.6, 5) is PageType.LSB
        assert self.choose(manager, 0.1, 5) is PageType.MSB
