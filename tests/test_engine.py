"""Tests for the parallel experiment engine and its serialization.

Covers the PR's contract points: deterministic per-cell seeding,
byte-identical serial vs parallel results, `RunResult`/
`ExperimentConfig` round-trips, the content-addressed result cache,
NaN metrics on empty runs, and the table-driven CLI registry.
"""

import argparse
import json
import math

import pytest

from repro.experiments import registry
from repro.experiments.engine import (
    Cell,
    EngineOptions,
    ResultCache,
    derive_seed,
    run_cells,
    workload_cell,
)
from repro.experiments.runner import (
    ExperimentConfig,
    RunResult,
    experiment_span,
    run_workload,
)
from repro.nand.geometry import NandGeometry
from repro.sim.stats import SimStats
from repro.workloads.benchmarks import build_workload

#: Small device so engine tests stay fast.
TEST_CONFIG = ExperimentConfig(
    geometry=NandGeometry(channels=2, chips_per_channel=2,
                          blocks_per_chip=16, pages_per_block=16,
                          page_size=2048),
    buffer_pages=64,
)


def _small_streams(workload="OLTP", total_ops=300, seed=1):
    span = experiment_span(TEST_CONFIG, utilization=0.5)
    return build_workload(workload, span, total_ops=total_ops, seed=seed)


class TestDeriveSeed:
    def test_stable_across_processes(self):
        # Hard-coded expectation: the derivation must never change, or
        # every cache key and seeded run changes under users' feet.
        assert derive_seed(1, "fig8", "Varmail", "flexFTL") == \
            derive_seed(1, "fig8", "Varmail", "flexFTL")

    def test_sensitive_to_every_coordinate(self):
        base = derive_seed(1, "fig8", "Varmail")
        assert derive_seed(2, "fig8", "Varmail") != base
        assert derive_seed(1, "fig4", "Varmail") != base
        assert derive_seed(1, "fig8", "OLTP") != base

    def test_in_32_bit_range(self):
        seed = derive_seed(12345, "x", 7)
        assert 0 <= seed < 2 ** 32


class TestCell:
    def test_key_is_stable_and_param_order_free(self):
        a = Cell.make("workload", ftl_name="pageFTL", seed=1)
        b = Cell.make("workload", seed=1, ftl_name="pageFTL")
        assert a.key() == b.key()

    def test_key_differs_on_params(self):
        a = Cell.make("workload", ftl_name="pageFTL", seed=1)
        b = Cell.make("workload", ftl_name="pageFTL", seed=2)
        assert a.key() != b.key()

    def test_label_does_not_affect_key(self):
        a = Cell.make("workload", label="x", ftl_name="pageFTL")
        b = Cell.make("workload", label="y", ftl_name="pageFTL")
        assert a.key() == b.key()

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            Cell.make("not-a-kind", x=1)


class TestRoundTrips:
    def test_experiment_config_round_trip(self):
        config = TEST_CONFIG
        clone = ExperimentConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.geometry == config.geometry

    def test_run_result_round_trip(self):
        streams = _small_streams()
        result = run_workload(ftl_name="pageFTL", streams=streams,
                              config=TEST_CONFIG)
        clone = RunResult.from_dict(result.to_dict())
        assert clone == result

    def test_run_result_dict_is_json_stable(self):
        streams = _small_streams()
        result = run_workload(ftl_name="pageFTL", streams=streams,
                              config=TEST_CONFIG)
        payload = json.dumps(result.to_dict(), sort_keys=True)
        clone = RunResult.from_dict(json.loads(payload))
        assert clone == result


class TestNanMetrics:
    def _empty_result(self):
        return RunResult(ftl_name="pageFTL", stats=SimStats(),
                         counters={"host_programs": 0, "programs": 0},
                         events=0, logical_pages=0)

    def test_zero_host_writes_give_nan(self):
        result = self._empty_result()
        assert math.isnan(result.write_amplification)
        assert math.isnan(result.iops)

    def test_nan_survives_serialization(self):
        result = self._empty_result()
        clone = RunResult.from_dict(result.to_dict())
        assert math.isnan(clone.write_amplification)


class TestEngine:
    def _cells(self):
        cells = []
        for workload in ("OLTP", "Varmail"):
            streams = _small_streams(workload)
            cells.append(workload_cell("pageFTL", streams, TEST_CONFIG,
                                       label=workload))
        return cells

    def test_serial_matches_parallel_bytewise(self):
        cells = self._cells()
        serial = run_cells(cells, options=EngineOptions(jobs=1))
        parallel = run_cells(cells, options=EngineOptions(jobs=2))
        serial_json = json.dumps([r.to_dict() for r in serial],
                                 sort_keys=True)
        parallel_json = json.dumps([r.to_dict() for r in parallel],
                                   sort_keys=True)
        assert serial_json == parallel_json

    def test_results_come_back_in_submission_order(self):
        cells = self._cells()
        results = run_cells(cells, options=EngineOptions(jobs=2))
        # Distinct workloads complete distinct request counts; order
        # must follow the submitted cells, not completion time.
        expected = [sum(len(s) for s in cell.kwargs["scenario"]["streams"])
                    for cell in cells]
        assert [r.stats.completed_requests for r in results] == expected

    def test_inline_run_equals_run_workload_round_trip(self):
        streams = _small_streams()
        cell = workload_cell("pageFTL", streams, TEST_CONFIG)
        (engine_result,) = run_cells([cell])
        direct = run_workload(ftl_name="pageFTL", streams=streams,
                              config=TEST_CONFIG)
        assert engine_result == direct


class TestResultCache:
    def test_disk_round_trip(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        streams = _small_streams()
        cell = workload_cell("pageFTL", streams, TEST_CONFIG)

        (cold,) = run_cells([cell], options=EngineOptions(cache=cache))
        assert cache.stores == 1 and cache.hits == 0

        (warm,) = run_cells([cell], options=EngineOptions(cache=cache))
        assert cache.hits == 1
        assert warm == cold

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        key = Cell.make("workload", ftl_name="pageFTL", seed=1).key()
        cache.put(key, "workload", {"x": 1})
        path = next(tmp_path.rglob("*.json"))
        path.write_text("not json")
        assert cache.get(key) is None

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        cache = ResultCache()
        key = Cell.make("workload", ftl_name="pageFTL", seed=1).key()
        cache.put(key, "workload", {"x": 1})
        assert list((tmp_path / "alt").rglob("*.json"))


class TestRegistry:
    def test_all_commands_registered_in_cli_order(self):
        names = [e.name for e in registry.all_experiments()]
        assert names == list(registry.CLI_ORDER)

    def test_every_experiment_is_complete(self):
        for experiment in registry.all_experiments():
            assert experiment.help
            parser = argparse.ArgumentParser()
            experiment.add_arguments(parser)  # must not raise
            assert callable(experiment.run)
            assert callable(experiment.render)


class TestCliFlags:
    def test_global_flags_accepted_after_subcommand(self):
        from repro.cli import build_parser
        parser = build_parser()
        args = parser.parse_args(
            ["fig8", "--jobs", "4", "--no-cache", "--json"])
        assert args.jobs == 4
        assert args.no_cache and args.json

    def test_global_flags_accepted_before_subcommand(self):
        from repro.cli import build_parser
        parser = build_parser()
        args = parser.parse_args(["--jobs", "4", "fig8"])
        assert args.jobs == 4
