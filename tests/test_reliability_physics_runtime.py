"""Controller wiring of the physics error engine.

End-to-end checks of the armed path: the voltage-shift ladder defers
host-read completion and charges itemised latency, failures land in
``FaultStats`` and the ``reliability.*`` trace events (schema-
conformant), parity-covered FTLs reconstruct uncorrectable pages, and
an unarmed system stays byte-identical in behaviour (no physics state,
no events, no counters).
"""

import pytest

from repro.core.flexftl import FlexFtl
from repro.ftl.base import FtlConfig
from repro.ftl.pageftl import PageFtl
from repro.nand.geometry import NandGeometry
from repro.observability import events as ev
from repro.observability.tracer import Tracer
from repro.reliability.physics import PhysicsConfig, PhysicsEngine
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.queues import (
    REQUEST_FAILED,
    REQUEST_OK,
    REQUEST_RECOVERED,
    Request,
    RequestKind,
)

from tests.helpers import build_small_system

GEOMETRY = NandGeometry(channels=2, chips_per_channel=2,
                        blocks_per_chip=16, pages_per_block=16,
                        page_size=512)
SPAN = 64

#: Stress far past the ECC cliff: every sampled host read fails the
#: baseline decode, every retry rung, and the escalated decode —
#: deterministically — so the full ladder is exercised without waiting
#: on rare draws.
DOOMED = PhysicsConfig(seed=3, pe_baseline=50000,
                       retention_baseline_hours=100000.0)


def _armed_system(ftl_cls, physics=DOOMED, tracer=None):
    config = FtlConfig(bg_gc_enabled=False)
    system = build_small_system(ftl_cls, GEOMETRY, buffer_pages=16,
                                ftl_config=config)
    sim, array, buffer, ftl, controller = system
    if tracer is not None:
        tracer.install(controller)
    host = ClosedLoopHost(sim, controller, [
        [StreamOp(RequestKind.WRITE, lpn, 1) for lpn in range(SPAN)]
    ])
    host.start()
    sim.run()
    engine = PhysicsEngine(physics)
    controller.attach_physics(engine)
    return sim, array, buffer, ftl, controller, engine


def _settled_lpn(ftl, buffer):
    for lpn in range(SPAN):
        if not buffer.contains(lpn) \
                and ftl.mapping.lookup_address(lpn) is not None:
            return lpn
    pytest.skip("no settled lpn")


def _read(sim, controller, lpn):
    request = Request(sim.now, RequestKind.READ, lpn, 1)
    submitted = sim.now
    controller.submit(request)
    sim.run()
    return request, request.completed_at - submitted


class TestArmedLadder:
    def test_doomed_read_walks_the_whole_ladder(self):
        sim, array, buffer, ftl, controller, engine = \
            _armed_system(FlexFtl)
        lpn = _settled_lpn(ftl, buffer)
        request, _ = _read(sim, controller, lpn)
        assert engine.read_errors == 1
        assert engine.shift_retries == len(DOOMED.retry_shifts)
        assert engine.shift_recoveries == 0
        assert engine.ecc_escalations == 1
        assert engine.uncorrectable == 1
        faults = controller.stats.faults
        assert faults.physics_read_errors == 1
        assert faults.voltage_shift_retries == len(DOOMED.retry_shifts)
        assert faults.read_retries == 1

    def test_ladder_latency_is_itemised(self):
        # Clean read on an identically built (unarmed) system.
        config = FtlConfig(bg_gc_enabled=False)
        sim, array, buffer, ftl, controller = build_small_system(
            FlexFtl, GEOMETRY, buffer_pages=16, ftl_config=config)
        host = ClosedLoopHost(sim, controller, [
            [StreamOp(RequestKind.WRITE, lpn, 1) for lpn in range(SPAN)]
        ])
        host.start()
        sim.run()
        lpn = _settled_lpn(ftl, buffer)
        _, clean = _read(sim, controller, lpn)

        sim, array, buffer, ftl, controller, engine = \
            _armed_system(FlexFtl)
        request, elapsed = _read(sim, controller, lpn)
        t_read = controller.timing.t_read
        rungs = len(DOOMED.retry_shifts)
        covered = request.status == REQUEST_RECOVERED
        expected = rungs + DOOMED.ecc_escalation_reads \
            + (ftl.wordlines if covered else 0)
        assert elapsed == pytest.approx(clean + expected * t_read,
                                        rel=1e-12)
        assert controller.stats.faults.ladder_reads == expected

    def test_parity_covered_page_is_reconstructed(self):
        sim, array, buffer, ftl, controller, engine = \
            _armed_system(FlexFtl)
        # Find a settled lpn whose block has live parity coverage.
        for lpn in range(SPAN):
            if buffer.contains(lpn):
                continue
            addr = ftl.mapping.lookup_address(lpn)
            if addr is None:
                continue
            chip_id = ftl.geometry.chip_id(addr.channel, addr.chip)
            if ftl.parity_covers(chip_id, addr):
                break
        else:
            pytest.skip("no parity-covered lpn")
        request, _ = _read(sim, controller, lpn)
        assert request.status == REQUEST_RECOVERED
        faults = controller.stats.faults
        assert faults.parity_reconstructions == 1
        assert faults.reconstructed_pages == 1
        assert faults.lost_pages == 0

    def test_uncovered_page_is_lost(self):
        sim, array, buffer, ftl, controller, engine = \
            _armed_system(PageFtl)
        lpn = _settled_lpn(ftl, buffer)
        request, _ = _read(sim, controller, lpn)
        assert request.status == REQUEST_FAILED
        assert controller.stats.faults.lost_pages == 1

    def test_benign_physics_leaves_reads_untouched(self):
        # A fresh, unworn device: BER ~1e-11, failure probability ~0.
        sim, array, buffer, ftl, controller, engine = _armed_system(
            PageFtl, physics=PhysicsConfig(seed=1))
        lpn = _settled_lpn(ftl, buffer)
        request, _ = _read(sim, controller, lpn)
        assert request.status == REQUEST_OK
        assert engine.reads_sampled == 1
        assert engine.read_errors == 0
        assert controller.stats.faults.physics_read_errors == 0


class TestObservabilityWiring:
    def test_trace_events_emitted_and_schema_conformant(self):
        tracer = Tracer()
        sim, array, buffer, ftl, controller, engine = _armed_system(
            FlexFtl, tracer=tracer)
        lpn = _settled_lpn(ftl, buffer)
        _read(sim, controller, lpn)
        tracer.finish()
        kinds = {}
        for event in tracer.events():
            kinds.setdefault(event.kind, []).append(event)
            assert event.kind in ev.EVENT_SCHEMA
            declared = {name for name, _ in
                        ev.EVENT_SCHEMA[event.kind]} | {"phase"}
            assert set(event.fields) <= declared
        errors = kinds.get(ev.RELIABILITY_READ_ERROR, [])
        shifts = kinds.get(ev.RELIABILITY_RETRY_SHIFT, [])
        assert len(errors) == 1
        assert len(shifts) == len(DOOMED.retry_shifts)
        assert errors[0].fields["ber"] > 0.0
        assert 0.0 < errors[0].fields["prob"] <= 1.0
        for event, shift in zip(shifts, DOOMED.retry_shifts):
            assert event.fields["shift"] == shift
            assert event.fields["recovered"] in (0, 1)
        # The BER histogram and error counter rode along in the
        # metrics registry.
        snapshot = tracer.metrics.to_dict()
        assert any(name.startswith("reliability.read_ber")
                   for name in snapshot["histograms"])
        assert any(name.startswith("reliability.read_errors")
                   for name in snapshot["counters"])

    def test_unarmed_system_has_no_physics_state(self):
        tracer = Tracer()
        config = FtlConfig(bg_gc_enabled=False)
        sim, array, buffer, ftl, controller = build_small_system(
            FlexFtl, GEOMETRY, buffer_pages=16, ftl_config=config)
        tracer.install(controller)
        host = ClosedLoopHost(sim, controller, [
            [StreamOp(RequestKind.WRITE, lpn, 1) for lpn in range(SPAN)]
        ])
        host.start()
        sim.run()
        lpn = _settled_lpn(ftl, buffer)
        request, _ = _read(sim, controller, lpn)
        tracer.finish()
        assert request.status == REQUEST_OK
        assert controller._physics is None
        assert all(event.kind not in (ev.RELIABILITY_READ_ERROR,
                                      ev.RELIABILITY_RETRY_SHIFT)
                   for event in tracer.events())
