"""Tests for the submission-queue arbitration policies."""

import pytest

from repro.qos.arbiter import (
    ARBITERS,
    DeficitRoundRobinArbiter,
    FifoArbiter,
    RoundRobinArbiter,
    WeightedRoundRobinArbiter,
    make_arbiter,
)
from repro.qos.queues import SubmissionQueue
from repro.sim.queues import Request, RequestKind


def make_queues(tenants, backlog, npages=1):
    """One queue per tenant, each pre-loaded with ``backlog`` writes.

    Sequence numbers interleave across tenants (tenant 0 first at each
    step), matching how simultaneous arrivals would be numbered.
    """
    queues = [SubmissionQueue(tenant) for tenant in tenants]
    seq = 0
    for _ in range(backlog):
        for index, queue in enumerate(queues):
            pages = npages[index] if isinstance(npages, list) else npages
            request = Request(0.0, RequestKind.WRITE, 0, pages,
                              tenant=tenants[index])
            queue.push(request, seq, 0.0)
            seq += 1
    return queues


def drain(arbiter, queues, limit):
    """Pop up to ``limit`` commands in arbiter order; returns tenants."""
    served = []
    for _ in range(limit):
        eligible = [not queue.is_empty for queue in queues]
        if not any(eligible):
            break
        index = arbiter.select(queues, eligible)
        command = queues[index].pop(0.0)
        if queues[index].is_empty:
            arbiter.note_empty(index)
        served.append((queues[index].tenant, command.request.npages))
    return served


class TestValidation:
    def test_needs_tenants(self):
        with pytest.raises(ValueError):
            FifoArbiter([])

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(ValueError):
            FifoArbiter(["a", "a"])

    def test_weight_count_must_match(self):
        with pytest.raises(ValueError):
            FifoArbiter(["a", "b"], [1.0])

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ValueError):
            FifoArbiter(["a"], [0.0])
        with pytest.raises(ValueError):
            FifoArbiter(["a"], [-1.0])

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_arbiter("strict_priority", ["a"])

    def test_registry_names(self):
        assert list(ARBITERS) == ["fifo", "rr", "wrr", "drr"]
        for name in ARBITERS:
            arbiter = make_arbiter(name, ["a", "b"], [2.0, 1.0])
            assert arbiter.name == name
            assert arbiter.weights == [2.0, 1.0]

    def test_drr_quantum_validated(self):
        with pytest.raises(ValueError):
            DeficitRoundRobinArbiter(["a"], quantum=0)


class TestFifo:
    def test_replays_global_arrival_order(self):
        queues = make_queues(["a", "b"], backlog=3)
        arbiter = FifoArbiter(["a", "b"])
        served = [t for t, _ in drain(arbiter, queues, 6)]
        assert served == ["a", "b", "a", "b", "a", "b"]

    def test_skips_ineligible(self):
        queues = make_queues(["a", "b"], backlog=1)
        arbiter = FifoArbiter(["a", "b"])
        assert arbiter.select(queues, [False, True]) == 1

    def test_none_when_nothing_eligible(self):
        queues = make_queues(["a", "b"], backlog=1)
        arbiter = FifoArbiter(["a", "b"])
        assert arbiter.select(queues, [False, False]) is None


class TestRoundRobin:
    def test_one_command_per_tenant_per_turn(self):
        queues = make_queues(["a", "b", "c"], backlog=2)
        arbiter = RoundRobinArbiter(["a", "b", "c"])
        served = [t for t, _ in drain(arbiter, queues, 6)]
        assert served == ["a", "b", "c", "a", "b", "c"]

    def test_skips_ineligible_and_advances(self):
        queues = make_queues(["a", "b", "c"], backlog=2)
        arbiter = RoundRobinArbiter(["a", "b", "c"])
        assert arbiter.select(queues, [False, True, True]) == 1
        assert arbiter.select(queues, [True, True, True]) == 2
        assert arbiter.select(queues, [True, True, True]) == 0

    def test_ignores_weights(self):
        queues = make_queues(["a", "b"], backlog=4)
        arbiter = RoundRobinArbiter(["a", "b"], [8.0, 1.0])
        served = [t for t, _ in drain(arbiter, queues, 8)]
        assert served.count("a") == served.count("b") == 4


class TestWeightedRoundRobin:
    def test_weight_sets_command_share(self):
        queues = make_queues(["heavy", "light"], backlog=30)
        arbiter = WeightedRoundRobinArbiter(["heavy", "light"],
                                            [2.0, 1.0])
        served = [t for t, _ in drain(arbiter, queues, 30)]
        assert served.count("heavy") == 2 * served.count("light")

    def test_fractional_weight_served_every_other_round(self):
        queues = make_queues(["a", "slow"], backlog=30)
        arbiter = WeightedRoundRobinArbiter(["a", "slow"], [1.0, 0.5])
        served = [t for t, _ in drain(arbiter, queues, 30)]
        assert served.count("a") == 2 * served.count("slow")

    def test_sole_eligible_tenant_always_served(self):
        queues = make_queues(["a", "b"], backlog=5)
        arbiter = WeightedRoundRobinArbiter(["a", "b"], [1.0, 0.25])
        for _ in range(5):
            assert arbiter.select(queues, [False, True]) == 1
            queues[1].pop(0.0)


class TestDeficitRoundRobin:
    def test_fair_in_pages_not_commands(self):
        # Tenant "big" issues 4-page commands, "small" 1-page ones; at
        # equal weight DRR should equalise *pages* served, i.e. serve
        # four of small's commands per one of big's.
        queues = make_queues(["big", "small"], backlog=40,
                             npages=[4, 1])
        arbiter = DeficitRoundRobinArbiter(["big", "small"], quantum=4)
        served = drain(arbiter, queues, 40)
        big_pages = sum(p for t, p in served if t == "big")
        small_pages = sum(p for t, p in served if t == "small")
        assert big_pages == pytest.approx(small_pages, rel=0.15)

    def test_weight_scales_page_share(self):
        queues = make_queues(["heavy", "light"], backlog=60)
        arbiter = DeficitRoundRobinArbiter(["heavy", "light"],
                                           [3.0, 1.0], quantum=1)
        served = drain(arbiter, queues, 40)
        heavy = sum(p for t, p in served if t == "heavy")
        light = sum(p for t, p in served if t == "light")
        assert heavy == pytest.approx(3 * light, rel=0.2)

    def test_oversized_command_eventually_served(self):
        # Head cost far above quantum*weight: credits accumulate over
        # multiple visits until the command fits.
        queues = make_queues(["a"], backlog=2, npages=32)
        arbiter = DeficitRoundRobinArbiter(["a"], quantum=4)
        assert arbiter.select(queues, [True]) == 0

    def test_note_empty_forfeits_deficit(self):
        queues = make_queues(["a", "b"], backlog=1, npages=1)
        arbiter = DeficitRoundRobinArbiter(["a", "b"], quantum=8)
        index = arbiter.select(queues, [True, True])
        queues[index].pop(0.0)
        arbiter.note_empty(index)
        assert arbiter._deficit[index] == 0.0

    def test_none_when_nothing_eligible(self):
        queues = make_queues(["a"], backlog=1)
        arbiter = DeficitRoundRobinArbiter(["a"])
        assert arbiter.select(queues, [False]) is None
