"""Behavioural tests for the four FTLs on a live simulated system."""

import pytest

from repro.core.flexftl import FlexFtl
from repro.ftl.base import FtlConfig
from repro.ftl.pageftl import PageFtl
from repro.ftl.parityftl import ParityFtl
from repro.ftl.rtfftl import RtfFtl
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.sequence import SequenceScheme
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.queues import RequestKind, WriteBuffer
from repro.workloads.synthetic import sequential_fill

from tests.helpers import build_small_system

ALL_FTLS = [PageFtl, ParityFtl, RtfFtl, FlexFtl]


def run_ops(system, ops):
    sim, array, buffer, ftl, controller = system
    host = ClosedLoopHost(sim, controller, [ops])
    host.start()
    sim.run()
    return controller.stats


def writes(count, span, npages=1, stride=1):
    return [StreamOp(RequestKind.WRITE, (i * stride) % span, npages)
            for i in range(count)]


class TestCommonFtlBehaviour:
    @pytest.mark.parametrize("ftl_cls", ALL_FTLS)
    def test_every_write_lands_in_the_mapping(self, ftl_cls,
                                              small_geometry):
        system = build_small_system(ftl_cls, small_geometry)
        _, _, _, ftl, _ = system
        run_ops(system, writes(64, span=64))
        for lpn in range(64):
            assert ftl.lookup(lpn) is not None

    @pytest.mark.parametrize("ftl_cls", ALL_FTLS)
    def test_host_program_count_matches_pages_written(self, ftl_cls,
                                                      small_geometry):
        system = build_small_system(ftl_cls, small_geometry)
        _, _, _, ftl, _ = system
        run_ops(system, writes(50, span=200, npages=2))
        assert ftl.host_programs == 100

    @pytest.mark.parametrize("ftl_cls", ALL_FTLS)
    def test_overwrites_invalidate_old_pages(self, ftl_cls,
                                             small_geometry):
        system = build_small_system(ftl_cls, small_geometry)
        _, _, _, ftl, _ = system
        run_ops(system, writes(40, span=8))  # heavy overwrite of 8 lpns
        total_valid = sum(
            ftl.mapping.valid_count(gb)
            for gb in range(small_geometry.total_blocks)
        )
        assert total_valid == 8

    @pytest.mark.parametrize("ftl_cls", ALL_FTLS)
    def test_sustained_overwrites_trigger_gc_not_deadlock(
            self, ftl_cls, small_geometry):
        system = build_small_system(ftl_cls, small_geometry)
        _, array, _, ftl, _ = system
        span = ftl.logical_pages // 2
        ops = sequential_fill(span) + writes(3 * span, span=span,
                                             stride=7)
        stats = run_ops(system, ops)
        assert stats.completed_requests == len(ops)
        assert array.total_erases > 0
        assert ftl.foreground_gcs + ftl.background_gcs > 0

    @pytest.mark.parametrize("ftl_cls", ALL_FTLS)
    def test_scheme_enforced_during_full_run(self, ftl_cls,
                                             small_geometry):
        # The device model raises on any illegal program, so a clean
        # run is itself a sequence-correctness check; assert the
        # device saw both page types.
        system = build_small_system(ftl_cls, small_geometry)
        _, array, _, ftl, _ = system
        run_ops(system, writes(300, span=150))
        assert array.lsb_programs > 0
        assert array.msb_programs > 0


class TestBackupPolicies:
    def test_pageftl_never_writes_backup(self, small_geometry):
        system = build_small_system(PageFtl, small_geometry)
        _, _, _, ftl, _ = system
        run_ops(system, writes(200, span=100))
        assert ftl.backup_programs == 0

    def test_parityftl_one_parity_per_two_lsb(self, small_geometry):
        system = build_small_system(ParityFtl, small_geometry)
        _, array, _, ftl, _ = system
        run_ops(system, writes(200, span=400))
        host_lsb = array.lsb_programs - ftl.backup_programs
        # Backups may also land on MSB slots under FPS order, so
        # compare against total host LSB programs loosely.
        assert ftl.backup_programs >= ftl.host_programs // 5
        assert ftl.backup_programs <= ftl.host_programs // 2 + 2
        assert host_lsb > 0

    def test_flexftl_one_parity_per_block(self, small_geometry):
        system = build_small_system(FlexFtl, small_geometry)
        _, _, _, ftl, _ = system
        run_ops(system, writes(256, span=512))
        wordlines = small_geometry.wordlines_per_block
        lsb_writes = ftl.array.lsb_programs - ftl.backup_programs
        expected = lsb_writes // wordlines
        assert abs(ftl.backup_programs - expected) <= 2

    def test_flexftl_parity_interval_ablation(self, small_geometry):
        per_block = build_small_system(FlexFtl, small_geometry)
        run_ops(per_block, writes(256, span=512))
        fine = build_small_system(FlexFtl, small_geometry,
                                  parity_interval=2)
        run_ops(fine, writes(256, span=512))
        assert fine[3].backup_programs > per_block[3].backup_programs


class TestFlexFtlSpecifics:
    def test_rejects_fps_array(self, small_geometry):
        array = NandArray(small_geometry, scheme=SequenceScheme.FPS)
        with pytest.raises(ValueError):
            FlexFtl(array, WriteBuffer(8))

    def test_quota_initialised_to_five_percent(self, small_geometry):
        system = build_small_system(FlexFtl, small_geometry)
        ftl = system[3]
        lsb_pages = (ftl.data_blocks_per_chip * ftl.wordlines
                     * small_geometry.total_chips)
        assert ftl.quota.initial == max(1, int(0.05 * lsb_pages))

    def test_blocks_written_strictly_two_phase(self, small_geometry):
        system = build_small_system(FlexFtl, small_geometry)
        _, array, _, ftl, _ = system
        run_ops(system, writes(200, span=400))
        wordlines = small_geometry.wordlines_per_block
        for chip in array.chips:
            for block in chip.blocks:
                history = block.program_history
                if not history:
                    continue
                lsb_positions = [i for i, page in enumerate(history)
                                 if page % 2 == 0]
                msb_positions = [i for i, page in enumerate(history)
                                 if page % 2 == 1]
                if msb_positions and lsb_positions:
                    # Data blocks: every LSB precedes every MSB (2PO).
                    # Backup blocks in "lsb" order have no MSB writes.
                    assert max(lsb_positions) < min(msb_positions)

    def test_counters_include_policy_state(self, small_geometry):
        system = build_small_system(FlexFtl, small_geometry)
        ftl = system[3]
        run_ops(system, writes(50, span=100))
        counters = ftl.counters()
        assert "quota" in counters
        assert counters["lsb_decisions"] + counters["msb_decisions"] == 50

    def test_negative_parity_interval_rejected(self, small_geometry):
        array = NandArray(small_geometry, scheme=SequenceScheme.RPS)
        with pytest.raises(ValueError):
            FlexFtl(array, WriteBuffer(8), parity_interval=-1)


class TestRtfFtlSpecifics:
    def test_pool_size_respected(self, small_geometry):
        system = build_small_system(RtfFtl, small_geometry,
                                    active_blocks=4)
        _, _, _, ftl, _ = system
        run_ops(system, writes(64, span=128))
        assert all(len(pool) <= 4 for pool in ftl._pools)

    def test_invalid_active_blocks_rejected(self, small_geometry):
        array = NandArray(small_geometry, scheme=SequenceScheme.FPS)
        with pytest.raises(ValueError):
            RtfFtl(array, WriteBuffer(8), active_blocks=0)

    def test_rtf_serves_longer_lsb_runs_than_pageftl(self,
                                                     medium_geometry):
        # With 8 active blocks a burst can take several successive LSB
        # pages; pageFTL's single FPS cursor alternates after two.
        def lsb_share(ftl_cls):
            system = build_small_system(ftl_cls, medium_geometry,
                                        buffer_pages=64)
            _, array, _, ftl, _ = system
            burst = writes(128, span=4096, stride=3)
            run_ops(system, burst)
            host_lsb = array.lsb_programs - ftl.backup_programs
            return host_lsb / ftl.host_programs

        assert lsb_share(RtfFtl) > lsb_share(PageFtl)


class TestConfigValidation:
    def test_ftl_config_bounds(self):
        with pytest.raises(ValueError):
            FtlConfig(op_ratio=0.0)
        with pytest.raises(ValueError):
            FtlConfig(gc_threshold_fraction=1.0)
        with pytest.raises(ValueError):
            FtlConfig(gc_reserve_blocks=0)
        with pytest.raises(ValueError):
            FtlConfig(backup_blocks_per_chip=0)
        with pytest.raises(ValueError):
            FtlConfig(bg_gc_min_invalid_fraction=1.5)

    def test_logical_pages_shrink_with_op_ratio(self, small_geometry):
        roomy = build_small_system(
            PageFtl, small_geometry,
            ftl_config=FtlConfig(op_ratio=0.5))[3]
        tight = build_small_system(
            PageFtl, small_geometry,
            ftl_config=FtlConfig(op_ratio=0.1))[3]
        assert roomy.logical_pages < tight.logical_pages

    def test_backup_ftl_has_fewer_data_blocks(self, small_geometry):
        plain = build_small_system(PageFtl, small_geometry)[3]
        parity = build_small_system(ParityFtl, small_geometry)[3]
        assert parity.data_blocks_per_chip == \
            plain.data_blocks_per_chip - 2
