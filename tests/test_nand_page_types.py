"""Tests for repro.nand.page_types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nand.page_types import (
    PageType,
    page_index,
    paired_index,
    split_index,
)


class TestPageType:
    def test_lsb_is_fast(self):
        assert PageType.LSB.is_fast
        assert not PageType.MSB.is_fast

    def test_paired_swaps(self):
        assert PageType.LSB.paired() is PageType.MSB
        assert PageType.MSB.paired() is PageType.LSB

    def test_int_values_match_index_convention(self):
        assert int(PageType.LSB) == 0
        assert int(PageType.MSB) == 1


class TestIndexing:
    def test_page_index_layout(self):
        assert page_index(0, PageType.LSB) == 0
        assert page_index(0, PageType.MSB) == 1
        assert page_index(3, PageType.LSB) == 6
        assert page_index(3, PageType.MSB) == 7

    def test_split_index_inverse(self):
        for index in range(64):
            wordline, ptype = split_index(index)
            assert page_index(wordline, ptype) == index

    def test_paired_index(self):
        assert paired_index(0) == 1
        assert paired_index(1) == 0
        assert paired_index(6) == 7
        assert paired_index(7) == 6

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            page_index(-1, PageType.LSB)
        with pytest.raises(ValueError):
            split_index(-1)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_paired_is_involution(self, index):
        assert paired_index(paired_index(index)) == index

    @given(st.integers(min_value=0, max_value=10_000))
    def test_pair_shares_wordline(self, index):
        wordline, _ = split_index(index)
        paired_wordline, paired_type = split_index(paired_index(index))
        assert paired_wordline == wordline
        assert paired_type is split_index(index)[1].paired()
