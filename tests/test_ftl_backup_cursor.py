"""Tests for repro.ftl.backup and repro.ftl.cursor."""

import pytest

from repro.core.rps import fps_order
from repro.ftl.backup import BackupBlockManager
from repro.ftl.cursor import FpsCursor, PhaseCursor
from repro.nand.page_types import PageType, page_index, split_index


class TestFpsCursor:
    def test_walks_the_fps_order(self):
        cursor = FpsCursor(5, wordlines=4)
        taken = []
        while not cursor.done:
            taken.append(page_index(*cursor.take()))
        assert taken == fps_order(4)

    def test_peek_type_matches_take(self):
        cursor = FpsCursor(0, wordlines=4)
        while not cursor.done:
            expected = cursor.peek_type()
            _, ptype = cursor.take()
            assert ptype is expected

    def test_remaining_counts_down(self):
        cursor = FpsCursor(0, wordlines=2)
        assert cursor.remaining == 4
        cursor.take()
        assert cursor.remaining == 3

    def test_exhausted_cursor_raises(self):
        cursor = FpsCursor(0, wordlines=1)
        cursor.take()
        cursor.take()
        with pytest.raises(IndexError):
            cursor.take()
        with pytest.raises(IndexError):
            cursor.peek_type()


class TestPhaseCursor:
    def test_lsb_phase_walks_wordlines(self):
        cursor = PhaseCursor(3, wordlines=3, ptype=PageType.LSB)
        taken = [cursor.take() for _ in range(3)]
        assert taken == [(0, PageType.LSB), (1, PageType.LSB),
                         (2, PageType.LSB)]
        assert cursor.done

    def test_msb_phase(self):
        cursor = PhaseCursor(3, wordlines=2, ptype=PageType.MSB)
        assert cursor.take() == (0, PageType.MSB)
        assert cursor.remaining == 1

    def test_exhaustion(self):
        cursor = PhaseCursor(0, wordlines=1, ptype=PageType.LSB)
        cursor.take()
        with pytest.raises(IndexError):
            cursor.take()


class TestBackupManagerLsbMode:
    def test_slots_are_lsb_pages_in_order(self):
        manager = BackupBlockManager([10, 11], wordlines=4, order="lsb")
        slots = [manager.allocate(("owner", i))[0] for i in range(4)]
        assert all(slot.block == 10 for slot in slots)
        assert [split_index(slot.page)[1] for slot in slots] == \
            [PageType.LSB] * 4

    def test_recycle_advances_ring_and_erases(self):
        manager = BackupBlockManager([10, 11], wordlines=2, order="lsb")
        manager.allocate("a")
        manager.allocate("b")
        manager.invalidate("a")
        manager.invalidate("b")
        slot, cycle = manager.allocate("c")
        assert cycle is not None
        assert cycle.erase_block == 11
        assert cycle.relocations == []
        assert slot.block == 11
        assert manager.cycles == 1

    def test_live_parity_relocated_on_recycle(self):
        manager = BackupBlockManager([10], wordlines=2, order="lsb")
        manager.allocate("a")          # slot 0, stays live
        manager.allocate("b")          # slot 1
        manager.invalidate("b")
        slot, cycle = manager.allocate("c")
        assert cycle is not None
        assert cycle.erase_block == 10
        assert len(cycle.relocations) == 1  # "a" survives the erase
        assert manager.slot_of("a") is not None
        assert manager.relocated == 1

    def test_owner_supersedes_previous_slot(self):
        manager = BackupBlockManager([10], wordlines=4, order="lsb")
        first, _ = manager.allocate("x")
        second, _ = manager.allocate("x")
        assert manager.slot_of("x") == second
        assert manager.live_count == 1

    def test_invalidate_unknown_owner_is_noop(self):
        manager = BackupBlockManager([10], wordlines=4)
        assert manager.invalidate("nobody") is None


class TestBackupManagerFpsMode:
    def test_fps_mode_walks_full_block(self):
        manager = BackupBlockManager([7], wordlines=4, order="fps")
        pages = []
        for i in range(8):
            slot, cycle = manager.allocate(("o", i))
            assert cycle is None
            pages.append(slot.page)
        assert pages == fps_order(4)

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            BackupBlockManager([7], wordlines=4, order="zigzag")

    def test_needs_blocks_and_wordlines(self):
        with pytest.raises(ValueError):
            BackupBlockManager([], wordlines=4)
        with pytest.raises(ValueError):
            BackupBlockManager([1], wordlines=0)
