"""Tests for repro.nand.timing."""

import pytest

from repro.nand.page_types import PageType
from repro.nand.timing import PAPER_TIMING, NandTiming


class TestTiming:
    def test_paper_asymmetry_is_4x(self):
        assert PAPER_TIMING.asymmetry == pytest.approx(4.0)

    def test_paper_latencies(self):
        assert PAPER_TIMING.t_lsb_prog == pytest.approx(500e-6)
        assert PAPER_TIMING.t_msb_prog == pytest.approx(2000e-6)
        assert PAPER_TIMING.t_read == pytest.approx(40e-6)

    def test_program_time_by_type(self):
        timing = NandTiming()
        assert timing.program_time(PageType.LSB) == timing.t_lsb_prog
        assert timing.program_time(PageType.MSB) == timing.t_msb_prog

    def test_effective_times_include_transfer(self):
        timing = NandTiming()
        assert timing.effective_program_time(PageType.LSB) == \
            pytest.approx(timing.t_lsb_prog + timing.t_transfer)
        assert timing.effective_read_time() == \
            pytest.approx(timing.t_read + timing.t_transfer)

    @pytest.mark.parametrize("field", [
        "t_lsb_prog", "t_msb_prog", "t_read", "t_erase", "t_transfer",
    ])
    def test_rejects_non_positive_latencies(self, field):
        with pytest.raises(ValueError):
            NandTiming(**{field: 0.0})

    def test_custom_asymmetry(self):
        timing = NandTiming(t_lsb_prog=1e-4, t_msb_prog=8e-4)
        assert timing.asymmetry == pytest.approx(8.0)
