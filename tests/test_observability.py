"""Tests for the structured trace bus: capture, determinism, ring
buffer, install/detach hygiene, metrics wiring, and sinks.

The load-bearing property is **determinism**: a traced run must
produce byte-identical simulation results to an untraced one, because
every capture site is either a verbatim copy of the hot path plus a
scalar append, or a cold-path emission that never touches simulation
state.  Everything else (ring, JSONL, summary reconciliation) builds
on that.
"""

import gc
import json

import pytest

from repro.core.flexftl import FlexFtl
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.ftl.pageftl import PageFtl
from repro.nand.geometry import NandGeometry
from repro.observability import events as ev
from repro.observability.tracer import Tracer
from repro.qos.host import MultiTenantHost, TenantSpec
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.queues import RequestKind

from tests.helpers import build_small_system

GEOMETRY = NandGeometry(channels=2, chips_per_channel=2,
                        blocks_per_chip=16, pages_per_block=16,
                        page_size=512)
SPAN = 120


def churn_stream(span=SPAN, rounds=3):
    """Sequential fill plus overwrite rounds — enough churn for GC,
    parity backups and both page types."""
    ops = [StreamOp(RequestKind.WRITE, lpn, 1) for lpn in range(span)]
    for round_no in range(rounds):
        ops.extend(StreamOp(RequestKind.WRITE, lpn, 1)
                   for lpn in range(0, span, round_no + 2))
    ops.extend(StreamOp(RequestKind.READ, lpn, 1)
               for lpn in range(0, span, 7))
    return ops


def run_system(ftl_cls, tracer=None, stream=None):
    system = build_small_system(ftl_cls, GEOMETRY, buffer_pages=16)
    sim, array, buffer, ftl, controller = system
    if tracer is not None:
        tracer.install(controller)
    host = ClosedLoopHost(sim, controller,
                          [stream or churn_stream()])
    host.start()
    sim.run()
    return system


def fingerprint(system):
    """Everything a trace capture could plausibly perturb."""
    sim, array, buffer, ftl, controller = system
    return {
        "now": sim.now,
        "processed": sim.processed,
        "stats": controller.stats.to_dict(),
        "counters": ftl.counters(),
        "programs": array.total_programs,
        "erases": array.total_erases,
        "reads": array.total_reads,
    }


class TestDeterminism:
    @pytest.mark.parametrize("ftl_cls", [PageFtl, FlexFtl])
    def test_traced_run_is_byte_identical(self, ftl_cls):
        plain = fingerprint(run_system(ftl_cls))
        tracer = Tracer()
        traced_system = run_system(ftl_cls, tracer=tracer)
        traced = fingerprint(traced_system)
        tracer.detach()
        # the traced run attaches nothing to controller.stats itself;
        # the fingerprints must agree byte-for-byte as JSON
        assert json.dumps(traced, sort_keys=True) \
            == json.dumps(plain, sort_keys=True)
        assert tracer.op_count > 0 and tracer.alloc_count > 0

    def test_disabled_tracer_installs_nothing(self):
        tracer = Tracer(enabled=False)
        system = run_system(FlexFtl, tracer=tracer)
        _, _, _, ftl, controller = system
        assert "_execute" not in controller.__dict__
        assert "_after_host_program" not in ftl.__dict__
        assert controller._trace is None and ftl._trace is None
        assert tracer.op_count == 0 and tracer.alloc_count == 0
        tracer.detach()  # no-op, must not raise


class TestInstallDetach:
    def test_detach_restores_pristine_state(self):
        sim, array, buffer, ftl, controller = build_small_system(
            FlexFtl, GEOMETRY)
        thresholds = gc.get_threshold()
        tracer = Tracer().install(controller)
        assert "_execute" in controller.__dict__
        assert gc.get_threshold() != thresholds
        tracer.detach()
        assert "_execute" not in controller.__dict__
        assert "_after_host_program" not in ftl.__dict__
        assert controller._trace is None and ftl._trace is None
        assert controller._metrics is None and ftl._metrics is None
        assert ftl._parity_counters is None
        assert gc.get_threshold() == thresholds

    def test_detach_restores_prior_patch(self):
        sim, _, _, ftl, controller = build_small_system(
            FlexFtl, GEOMETRY)
        sentinel = lambda *args: None  # noqa: E731
        controller._execute = sentinel
        tracer = Tracer().install(controller)
        assert controller.__dict__["_execute"] is not sentinel
        tracer.detach()
        assert controller.__dict__["_execute"] is sentinel

    def test_double_install_rejected(self):
        _, _, _, _, controller = build_small_system(FlexFtl, GEOMETRY)
        tracer = Tracer().install(controller)
        with pytest.raises(RuntimeError):
            tracer.install(controller)
        tracer.detach()

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestRingBuffer:
    def test_ring_retains_newest_and_counts_drops(self):
        tracer = Tracer(capacity=50)
        run_system(FlexFtl, tracer=tracer)
        tracer.detach()
        assert tracer.op_count == 50
        assert tracer.dropped_ops > 0
        issues = [event for event in tracer.events()
                  if event.kind == ev.OP_ISSUE]
        assert len(issues) == 50
        # the newest records survive: issue times are the run's tail
        all_times = [event.time for event in issues]
        assert all_times == sorted(all_times)
        # cold events are never trimmed
        assert any(event.kind == ev.TPO_BLOCK_FULL
                   for event in tracer.events())

    def test_clear_resets_buffers_but_not_installation(self):
        sim, _, _, _, controller = build_small_system(
            FlexFtl, GEOMETRY)
        tracer = Tracer().install(controller)
        host = ClosedLoopHost(sim, controller, [churn_stream(40, 1)])
        host.start()
        sim.run()
        assert tracer.op_count > 0
        tracer.clear()
        assert tracer.op_count == 0 and tracer.alloc_count == 0
        assert tracer.events() == []
        tracer.detach()


class TestMetricsWiring:
    def test_counters_agree_with_ftl_bookkeeping(self):
        # enough overwrite churn to force garbage collection
        heavy = [StreamOp(RequestKind.WRITE, lpn % SPAN, 1)
                 for lpn in range(SPAN * 13)]
        tracer = Tracer()
        system = run_system(FlexFtl, tracer=tracer, stream=heavy)
        _, _, _, ftl, _ = system
        tracer.detach()
        assert ftl.counters()["foreground_gcs"] > 0
        counters = ftl.counters()
        metrics = tracer.metrics
        assert metrics.counter_total("gc.collections") \
            == counters["foreground_gcs"] + counters["background_gcs"]
        assert metrics.counter_total("parity.writes") \
            == counters["backup_programs"]
        # parity counters are per-chip labeled; events mirror them
        parity_events = [event for event in tracer.events()
                         if event.kind == ev.PARITY_WRITE]
        assert len(parity_events) == counters["backup_programs"]

    def test_phase_attribution_splits_on_begin_phase(self):
        sim, _, _, _, controller = build_small_system(
            FlexFtl, GEOMETRY)
        tracer = Tracer().install(controller)
        tracer.begin_phase("warmup")
        host = ClosedLoopHost(sim, controller, [churn_stream(60, 1)])
        host.start()
        sim.run()
        tracer.begin_phase("measured")
        host = ClosedLoopHost(sim, controller, [churn_stream(60, 1)])
        host.start()
        sim.run()
        tracer.finish()
        tracer.detach()
        phases = {event.fields["phase"]
                  for event in tracer.events()
                  if event.kind == ev.OP_ISSUE}
        assert phases == {"warmup", "measured"}
        profile = [event for event in tracer.events()
                   if event.kind == ev.PROFILE_PHASE]
        assert [event.fields["name"] for event in profile] \
            == ["warmup", "measured"]
        assert sum(event.fields["events"] for event in profile) \
            == sim.processed


class TestColdEmission:
    def test_fault_events_emitted(self):
        sim, array, buffer, ftl, controller = build_small_system(
            FlexFtl, GEOMETRY, buffer_pages=16)
        plan = FaultPlan(events=(
            FaultEvent("program_fail", chip=0, op_index=10),))
        controller.attach_fault_injector(
            FaultInjector(plan, page_size=GEOMETRY.page_size))
        tracer = Tracer().install(controller)
        host = ClosedLoopHost(sim, controller, [churn_stream()])
        host.start()
        sim.run()
        tracer.detach()
        kinds = [event.kind for event in tracer.events()]
        assert ev.FAULT_INJECT in kinds and ev.FAULT_RECOVER in kinds
        inject = next(event for event in tracer.events()
                      if event.kind == ev.FAULT_INJECT)
        assert inject.fields["fault"] == "program_fail"
        assert inject.fields["chip"] == 0

    def test_qos_events_emitted(self):
        sim, _, _, _, controller = build_small_system(
            PageFtl, GEOMETRY)
        specs = [
            TenantSpec.make("a", [[StreamOp(RequestKind.WRITE, lpn, 1)
                                   for lpn in range(20)]]),
            TenantSpec.make("b", [[StreamOp(RequestKind.WRITE, lpn, 1)
                                   for lpn in range(60, 80)]]),
        ]
        host = MultiTenantHost(sim, controller, specs)
        tracer = Tracer().install(controller, qos_host=host)
        host.start()
        sim.run()
        tracer.detach()
        admits = [event for event in tracer.events()
                  if event.kind == ev.QOS_ADMIT]
        assert len(admits) == 40
        assert {event.fields["tenant"] for event in admits} \
            == {"a", "b"}
        assert any(event.kind == ev.QOS_ARBITRATE
                   for event in tracer.events())


class TestSinks:
    def test_jsonl_round_trip_preserves_every_event(self, tmp_path):
        from repro.observability.summary import (summarize_jsonl,
                                                 summarize_tracer)
        tracer = Tracer()
        run_system(FlexFtl, tracer=tracer)
        tracer.detach()
        path = tmp_path / "trace.jsonl"
        written = tracer.write_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == written + 1  # meta header + events
        header = json.loads(lines[0])
        assert header["ev"] == "trace.meta"
        assert header["schema"] == ev.SCHEMA_VERSION
        assert header["ftl"] == "flexFTL"
        # the file digest matches the in-memory digest exactly
        assert summarize_jsonl(str(path)).to_dict() \
            == summarize_tracer(tracer).to_dict()

    def test_every_emitted_kind_is_in_the_schema(self):
        tracer = Tracer()
        run_system(FlexFtl, tracer=tracer)
        tracer.detach()
        for event in tracer.events():
            assert event.kind in ev.EVENT_SCHEMA
            allowed = {field for field, _ in
                       ev.EVENT_SCHEMA[event.kind]} | {"phase"}
            assert set(event.fields) <= allowed, \
                f"{event.kind} carries undeclared fields"
