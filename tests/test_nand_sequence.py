"""Tests for repro.nand.sequence: the constraint checker."""

import pytest

from repro.nand.page_types import PageType, page_index
from repro.nand.sequence import SequenceScheme, constraint_violations


def make_checker(programmed):
    """Build an ``is_programmed`` predicate from a set of page indices."""
    return lambda wl, ptype: page_index(wl, ptype) in programmed


class TestSchemes:
    def test_constraint_sets(self):
        assert SequenceScheme.FPS.constraints == (1, 2, 3, 4)
        assert SequenceScheme.RPS.constraints == (1, 2, 3)
        assert SequenceScheme.NONE.constraints == ()

    def test_none_scheme_allows_anything(self):
        checker = make_checker(set())
        assert constraint_violations(checker, 8, 5, PageType.MSB,
                                     SequenceScheme.NONE) == []


class TestConstraint1And2:
    def test_first_lsb_allowed_on_empty_block(self):
        checker = make_checker(set())
        assert constraint_violations(checker, 4, 0, PageType.LSB,
                                     SequenceScheme.RPS) == []

    def test_lsb_requires_previous_lsb(self):
        checker = make_checker(set())
        violations = constraint_violations(checker, 4, 1, PageType.LSB,
                                           SequenceScheme.RPS)
        assert any("constraint 1" in v for v in violations)

    def test_msb_requires_previous_msb(self):
        # LSBs 0..3 and MSB pairing satisfied, but MSB(0) missing.
        programmed = {page_index(w, PageType.LSB) for w in range(4)}
        checker = make_checker(programmed)
        violations = constraint_violations(checker, 4, 1, PageType.MSB,
                                           SequenceScheme.RPS)
        assert any("constraint 2" in v for v in violations)


class TestConstraint3:
    def test_msb_requires_next_lsb(self):
        programmed = {page_index(0, PageType.LSB)}
        checker = make_checker(programmed)
        violations = constraint_violations(checker, 4, 0, PageType.MSB,
                                           SequenceScheme.RPS)
        assert any("constraint 3" in v for v in violations)

    def test_msb_allowed_once_next_lsb_written(self):
        programmed = {page_index(0, PageType.LSB),
                      page_index(1, PageType.LSB)}
        checker = make_checker(programmed)
        assert constraint_violations(checker, 4, 0, PageType.MSB,
                                     SequenceScheme.RPS) == []

    def test_last_wordline_msb_has_no_constraint3(self):
        # All LSBs and MSBs 0..2 written; MSB(3) needs no LSB(4).
        programmed = {page_index(w, PageType.LSB) for w in range(4)}
        programmed |= {page_index(w, PageType.MSB) for w in range(3)}
        checker = make_checker(programmed)
        assert constraint_violations(checker, 4, 3, PageType.MSB,
                                     SequenceScheme.RPS) == []


class TestConstraint4:
    def test_fps_blocks_lsb_ahead_of_msb(self):
        # RPSfull prefix: LSB(0), LSB(1) written; LSB(2) next.
        programmed = {page_index(0, PageType.LSB),
                      page_index(1, PageType.LSB)}
        checker = make_checker(programmed)
        fps = constraint_violations(checker, 4, 2, PageType.LSB,
                                    SequenceScheme.FPS)
        rps = constraint_violations(checker, 4, 2, PageType.LSB,
                                    SequenceScheme.RPS)
        assert any("constraint 4" in v for v in fps)
        assert rps == []

    def test_fps_allows_lsb_after_msb_k_minus_2(self):
        programmed = {
            page_index(0, PageType.LSB),
            page_index(1, PageType.LSB),
            page_index(0, PageType.MSB),
        }
        checker = make_checker(programmed)
        assert constraint_violations(checker, 4, 2, PageType.LSB,
                                     SequenceScheme.FPS) == []


class TestPairing:
    def test_msb_requires_own_lsb(self):
        # Single word line: constraints 1-3 are vacuous, pairing is not.
        checker = make_checker(set())
        violations = constraint_violations(checker, 1, 0, PageType.MSB,
                                           SequenceScheme.RPS)
        assert any("pairing" in v for v in violations)

    def test_pairing_satisfied(self):
        programmed = {page_index(0, PageType.LSB)}
        checker = make_checker(programmed)
        assert constraint_violations(checker, 1, 0, PageType.MSB,
                                     SequenceScheme.RPS) == []


class TestInputValidation:
    def test_wordline_out_of_range(self):
        checker = make_checker(set())
        with pytest.raises(ValueError):
            constraint_violations(checker, 4, 4, PageType.LSB,
                                  SequenceScheme.RPS)
        with pytest.raises(ValueError):
            constraint_violations(checker, 4, -1, PageType.LSB,
                                  SequenceScheme.RPS)
