"""Tests for the TLC burst-service experiment."""

import pytest

from repro.experiments.tlc_burst import (
    render_tlc_burst,
    run_tlc_burst_experiment,
    serve_burst,
)
from repro.nand.tlc import TlcScheme, fps_tlc_order, rps_tlc_full_order


class TestServeBurst:
    def test_burst_larger_than_block_rejected(self):
        with pytest.raises(ValueError):
            serve_burst(rps_tlc_full_order(4), TlcScheme.RPS, 4,
                        burst_pages=13, label="x")

    def test_rps_burst_is_pure_lsb_until_wordlines(self):
        outcome = serve_burst(rps_tlc_full_order(8), TlcScheme.RPS, 8,
                              burst_pages=8, label="rps")
        assert outcome.page_type_mix == {"LSB": 8}
        assert outcome.burst_service_time == pytest.approx(8 * 500e-6)

    def test_fps_burst_mixes_types(self):
        outcome = serve_burst(fps_tlc_order(8), TlcScheme.FPS, 8,
                              burst_pages=9, label="fps")
        assert set(outcome.page_type_mix) == {"LSB", "CSB", "MSB"}

    def test_block_completion_equal_for_both(self):
        fps = serve_burst(fps_tlc_order(8), TlcScheme.FPS, 8, 6, "a")
        rps = serve_burst(rps_tlc_full_order(8), TlcScheme.RPS, 8, 6,
                          "b")
        assert fps.block_completion_time == \
            pytest.approx(rps.block_completion_time)

    def test_bandwidth_property(self):
        outcome = serve_burst(rps_tlc_full_order(4), TlcScheme.RPS, 4,
                              burst_pages=4, label="x")
        assert outcome.burst_bandwidth_pages_per_s == \
            pytest.approx(4 / outcome.burst_service_time)


class TestExperiment:
    def test_speedup_in_expected_band(self):
        fps, rps = run_tlc_burst_experiment(wordlines=32,
                                            burst_pages=24)
        speedup = fps.burst_service_time / rps.burst_service_time
        assert 4.0 < speedup <= 5.34

    def test_render(self):
        text = render_tlc_burst(run_tlc_burst_experiment(16, 12))
        assert "RPS-TLC" in text
        assert "speedup" in text
