"""Differential tests: runtime physics engine vs the offline oracle.

The runtime engine (:mod:`repro.reliability.physics`) tracks aggressor
counts, retention clocks and read-disturb counters *incrementally* as
ops complete; the offline oracle recomputes the same quantities from
scratch out of each block's recorded program history
(:func:`oracle_page_state` / :func:`oracle_read_probability`, built on
the Monte-Carlo modules' :func:`aggressor_counts` and the shared
closed-form BER).  These tests pin the two implementations together
with **exact** equality — same floats, not approximations — because
both sides call the same model functions and any divergence means the
incremental bookkeeping drifted from the recorded truth.

Also here:

* cross-kernel/stepping determinism — an armed physics run serializes
  byte-identically under the calendar and heap kernels and the event
  and vector stepping modes (the engine's RNG is consumed in
  completion order, which all four retire identically);
* Monte-Carlo convergence — the closed form the runtime samples from
  agrees with the mean of many seeded Monte-Carlo page draws, at the
  unshifted references and at a retry-ladder shift.
"""

import json
import random

import numpy as np
import pytest

from repro.core.rps import fps_order, random_rps_order
from repro.experiments.runner import (
    ExperimentConfig,
    build_system,
    experiment_span,
)
from repro.nand.geometry import NandGeometry, PhysicalPageAddress
from repro.reliability.ber import (
    OperatingCondition,
    expected_page_ber,
    page_bit_error_rate,
)
from repro.reliability.interference import aggressor_counts
from repro.reliability.physics import (
    PhysicsConfig,
    PhysicsEngine,
    oracle_page_state,
    oracle_read_probability,
)
from repro.reliability.runner import PhysicsRunResult, run_physics_workload
from repro.scenarios.presets import make_preset
from repro.sim.host import ClosedLoopHost
from repro.workloads.benchmarks import build_workload
from repro.workloads.synthetic import sequential_fill

WORDLINES = 16

#: Small device for the live-system differential runs.
GEOMETRY = NandGeometry(channels=2, chips_per_channel=2,
                        blocks_per_chip=16, pages_per_block=16,
                        page_size=512)

ORDER_SEEDS = range(25)


def _orders(seed):
    rng = random.Random(seed)
    return [fps_order(WORDLINES), random_rps_order(WORDLINES, rng)]


@pytest.mark.parametrize("seed", ORDER_SEEDS)
def test_incremental_aggressors_match_oracle(seed):
    """note_program() tracks exactly what aggressor_counts() recomputes.

    Checked at *every prefix* of FPS and random-RPS fills, not just at
    the full block: the runtime engine answers reads mid-fill.
    """
    for order in _orders(seed):
        engine = PhysicsEngine(PhysicsConfig())
        for length, page in enumerate(order, start=1):
            engine.note_program(0, 0, page, now=0.0)
            history = order[:length]
            counts = aggressor_counts(history, WORDLINES)
            tracked = engine.block_aggressors(0, 0)
            for wordline in range(WORDLINES):
                aggr, finalized = oracle_page_state(
                    history, WORDLINES, 2 * wordline + 1)
                if finalized:
                    assert tracked[wordline] == counts[wordline] == aggr
                else:
                    assert wordline not in tracked
                    assert aggr == 0


def test_erase_resets_engine_state():
    engine = PhysicsEngine(PhysicsConfig())
    for page in fps_order(WORDLINES):
        engine.note_program(0, 3, page, now=0.0)
    assert engine.block_aggressors(0, 3)
    engine.note_erase(0, 3)
    assert engine.block_aggressors(0, 3) == {}
    # Reprogramming after the erase starts from a clean slate.
    engine.note_program(0, 3, 0, now=1.0)
    assert engine.block_aggressors(0, 3) == {}


@pytest.mark.parametrize("seed", range(8))
def test_sampled_read_matches_oracle_probability(seed):
    """on_read()'s (ber, pfail) equals the oracle's, float for float.

    A real NAND block is programmed with a random RPS order (so the
    recorded history exists), the engine binds and primes from it, and
    every page's sampled outcome is recomputed from the history alone.
    """
    from repro.nand.array import NandArray
    from repro.nand.page_types import PageType
    from repro.nand.sequence import SequenceScheme

    geometry = NandGeometry(channels=1, chips_per_channel=1,
                            blocks_per_chip=2,
                            pages_per_block=2 * WORDLINES,
                            page_size=2048)
    array = NandArray(geometry, scheme=SequenceScheme.RPS,
                      track_history=True)
    order = random_rps_order(WORDLINES, random.Random(seed))
    for page in order:
        ptype = PageType.MSB if page & 1 else PageType.LSB
        array.program(PhysicalPageAddress(0, 0, 0, page), ptype)

    config = PhysicsConfig(seed=seed, pe_baseline=3000,
                           retention_baseline_hours=8760.0)
    engine = PhysicsEngine(config)
    engine.bind(array, now=0.0)
    history = list(array.chips[0].blocks[0].program_history)
    assert history == order

    for reads_so_far, page in enumerate(order):
        outcome = engine.on_read(0, 0, page, now=0.0, sample=True)
        # Mirror the engine's quantisation (primed pages carry
        # prog_reads=0, so disturbs == reads absorbed so far).
        dist_q = ((reads_so_far // config.disturb_quantum)
                  * config.disturb_quantum)
        ber, pfail = oracle_read_probability(
            history, WORDLINES, page,
            pe_cycles=3000,
            retention_hours=8760.0,
            read_disturbs=dist_q,
            config=config,
            page_size=geometry.page_size,
        )
        assert outcome.ber == ber
        assert outcome.probability == pfail


def test_live_run_aggressors_match_recorded_histories():
    """After a full simulated workload (warmup, GC, erases), every
    block's incremental aggressor state equals the oracle recomputation
    from its recorded program history."""
    config = ExperimentConfig(geometry=GEOMETRY, track_history=True)
    sim, array, _buffer, ftl, controller = build_system("flexFTL",
                                                        config)
    span = max(1, int(ftl.logical_pages * 0.6))
    warm = ClosedLoopHost(sim, controller, [sequential_fill(span)])
    warm.start()
    sim.run()

    engine = PhysicsEngine(PhysicsConfig())
    controller.attach_physics(engine)
    streams = build_workload("NTRX", span, total_ops=600, seed=3)
    host = ClosedLoopHost(sim, controller, streams)
    host.start()
    sim.run()

    wordlines = GEOMETRY.pages_per_block // 2
    blocks_checked = 0
    for chip_id, chip in enumerate(array.chips):
        for block_id, blk in enumerate(chip.blocks):
            history = list(blk.program_history)
            tracked = engine.block_aggressors(chip_id, block_id)
            if not history:
                assert tracked == {}
                continue
            counts = aggressor_counts(history, wordlines)
            expected = {
                wl: counts[wl] for wl in range(wordlines)
                if (2 * wl + 1) in history
            }
            assert tracked == expected
            blocks_checked += 1
    assert blocks_checked > 0


def _physics_run(kernel, stepping):
    config = ExperimentConfig(geometry=GEOMETRY, track_history=True,
                              kernel=kernel, stepping=stepping)
    span = experiment_span(config, utilization=0.6, ftls=["flexFTL"])
    scenario = make_preset("hot_rewrite", span, 400, seed=11)
    physics = PhysicsConfig(seed=5, pe_baseline=6000,
                            retention_baseline_hours=8760.0)
    result = run_physics_workload(ftl_name="flexFTL", scenario=scenario,
                                  physics=physics, config=config)
    return json.dumps(result.to_dict(), sort_keys=True)


def test_physics_run_identical_across_kernels_and_stepping():
    """One armed run, serialized byte-identically under every kernel
    and stepping combination (the determinism contract: the RNG stream
    is consumed in completion order, which all modes retire alike)."""
    reference = _physics_run("calendar", "event")
    assert _physics_run("heap", "event") == reference
    assert _physics_run("calendar", "vector") == reference


def test_physics_result_roundtrip():
    config = ExperimentConfig(geometry=GEOMETRY, track_history=True)
    span = experiment_span(config, utilization=0.6, ftls=["pageFTL"])
    scenario = make_preset("cold_aging", span, 300, seed=2)
    result = run_physics_workload(
        ftl_name="pageFTL", scenario=scenario,
        physics=PhysicsConfig(seed=9, pe_baseline=3000,
                              retention_baseline_hours=8760.0),
        config=config)
    assert result.physics["reads_sampled"] > 0
    restored = PhysicsRunResult.from_dict(result.to_dict())
    assert json.dumps(restored.to_dict(), sort_keys=True) == \
        json.dumps(result.to_dict(), sort_keys=True)


@pytest.mark.parametrize("ref_shift", [0.0, -0.08])
def test_montecarlo_converges_to_closed_form(ref_shift):
    """The closed form the runtime samples from is the Monte-Carlo
    model's mean, including under a retry-ladder reference shift."""
    condition = OperatingCondition(pe_cycles=6000,
                                   retention_hours=8760.0)
    aggressors = 3
    expected = expected_page_ber(aggressors, condition,
                                 ref_shift=ref_shift)
    samples = [
        page_bit_error_rate(aggressors, condition,
                            rng=np.random.default_rng(seed),
                            ref_shift=ref_shift)
        for seed in range(40)
    ]
    mean = float(np.mean(samples))
    se = float(np.std(samples, ddof=1)) / np.sqrt(len(samples))
    assert expected > 0.0
    assert abs(mean - expected) < 6.0 * max(se, 1e-9), (
        f"MC mean {mean:.3e} vs closed form {expected:.3e} "
        f"(se {se:.2e}, shift {ref_shift})")
