"""Tests for the Section 6 future-write predictor."""

import dataclasses

import pytest

from repro.core.flexftl import FlexFtl
from repro.core.predictor import EwmaBurstPredictor
from repro.experiments.runner import (
    ExperimentConfig,
    experiment_span,
    run_workload,
)
from repro.nand.geometry import NandGeometry
from repro.workloads.benchmarks import build_workload


class TestEwmaBurstPredictor:
    def test_initial_estimate(self):
        predictor = EwmaBurstPredictor(initial_estimate=100.0)
        assert predictor.predicted_burst_pages() == 100.0
        assert EwmaBurstPredictor().predicted_burst_pages() == 0.0

    def test_single_burst_learned(self):
        predictor = EwmaBurstPredictor(gap_threshold=0.1, alpha=1.0)
        for i in range(50):
            predictor.observe_write(i * 0.001)
        # burst ends when a large gap is observed
        predictor.observe_write(10.0)
        assert predictor.bursts_observed == 1
        assert predictor.predicted_burst_pages() == pytest.approx(50.0)

    def test_gap_query_folds_open_burst(self):
        predictor = EwmaBurstPredictor(gap_threshold=0.1, alpha=1.0)
        for i in range(20):
            predictor.observe_write(i * 0.001)
        assert predictor.in_burst_pages == 20
        assert predictor.predicted_burst_pages(now=5.0) == \
            pytest.approx(20.0)
        assert predictor.in_burst_pages == 0

    def test_ewma_smooths(self):
        predictor = EwmaBurstPredictor(gap_threshold=0.1, alpha=0.5)
        for i in range(10):
            predictor.observe_write(i * 0.001)
        predictor.observe_write(1.0)  # closes burst of 10
        for i in range(30):
            predictor.observe_write(1.0 + i * 0.001)
        predictor.predicted_burst_pages(now=5.0)  # closes burst of 31
        estimate = predictor.predicted_burst_pages()
        assert 10 < estimate < 31

    def test_multi_page_writes(self):
        predictor = EwmaBurstPredictor(gap_threshold=0.1, alpha=1.0)
        predictor.observe_write(0.0, pages=8)
        predictor.observe_write(0.001, pages=8)
        assert predictor.in_burst_pages == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            EwmaBurstPredictor(gap_threshold=0.0)
        with pytest.raises(ValueError):
            EwmaBurstPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaBurstPredictor(initial_estimate=-1.0)
        predictor = EwmaBurstPredictor()
        with pytest.raises(ValueError):
            predictor.observe_write(0.0, pages=0)


class TestFlexFtlPredictorIntegration:
    CONFIG = ExperimentConfig(
        geometry=NandGeometry(channels=2, chips_per_channel=2,
                              blocks_per_chip=24, pages_per_block=32,
                              page_size=2048),
        buffer_pages=64,
    )

    def test_predictor_observes_host_writes(self):
        from repro.experiments.runner import build_system
        config = dataclasses.replace(self.CONFIG,
                                     flex_use_predictor=True)
        _, _, _, ftl, _ = build_system("flexFTL", config)
        assert isinstance(ftl, FlexFtl)
        assert ftl.predictor is not None

    def test_predictor_triggers_extra_collection(self):
        span = experiment_span(self.CONFIG, utilization=0.45)
        streams = build_workload("Varmail", span, total_ops=4000,
                                 seed=2)
        base = run_workload(ftl_name="flexFTL", streams=streams,
                            config=self.CONFIG)
        boosted = run_workload(
            ftl_name="flexFTL", streams=streams,
            config=dataclasses.replace(self.CONFIG,
                                       flex_use_predictor=True))
        # Just-in-time collection leaves the quota healthier.
        assert boosted.counters["quota"] >= base.counters["quota"]
        assert boosted.counters["gc_programs"] >= \
            base.counters["gc_programs"]

    def test_predictor_absent_means_paper_behaviour(self):
        span = experiment_span(self.CONFIG, utilization=0.45)
        streams = build_workload("Varmail", span, total_ops=2000,
                                 seed=2)
        a = run_workload(ftl_name="flexFTL", streams=streams,
                         config=self.CONFIG)
        b = run_workload(ftl_name="flexFTL", streams=streams,
                         config=self.CONFIG)
        assert a.counters == b.counters  # deterministic, no predictor
