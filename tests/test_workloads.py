"""Tests for the workloads package."""

import numpy as np
import pytest

from repro.sim.queues import Request, RequestKind
from repro.workloads.benchmarks import (
    PROFILES,
    build_workload,
    format_rw_ratio,
    workload_table,
)
from repro.workloads.synthetic import (
    burst_stream,
    mixed_stream,
    sequential_fill,
    uniform_random_writes,
)
from repro.workloads.trace import load_trace, save_trace
from repro.workloads.zipf import ZipfSampler


class TestZipf:
    def test_samples_in_range(self):
        sampler = ZipfSampler(100, 1.0, np.random.default_rng(0))
        samples = sampler.sample_many(1000)
        assert samples.min() >= 0
        assert samples.max() < 100

    def test_skew_concentrates_mass(self):
        rng = np.random.default_rng(1)
        skewed = ZipfSampler(1000, 1.2, rng, shuffle=False)
        samples = skewed.sample_many(5000)
        top_share = np.mean(samples < 10)
        assert top_share > 0.3  # top-10 ranks get a large share

    def test_zero_skew_is_roughly_uniform(self):
        rng = np.random.default_rng(2)
        uniform = ZipfSampler(100, 0.0, rng, shuffle=False)
        samples = uniform.sample_many(10000)
        top_share = np.mean(samples < 10)
        assert 0.05 < top_share < 0.2

    def test_shuffle_spreads_hot_items(self):
        rng = np.random.default_rng(3)
        sampler = ZipfSampler(1000, 1.2, rng, shuffle=True)
        samples = sampler.sample_many(5000)
        # the hottest item is no longer item 0
        values, counts = np.unique(samples, return_counts=True)
        assert values[np.argmax(counts)] != 0 or counts.max() < 100

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, s=-1.0)
        sampler = ZipfSampler(10)
        with pytest.raises(ValueError):
            sampler.sample_many(-1)


class TestSyntheticPrimitives:
    def test_sequential_fill_covers_space_exactly_once(self):
        ops = sequential_fill(100, npages_per_request=8)
        covered = []
        for op in ops:
            assert op.kind is RequestKind.WRITE
            covered.extend(range(op.lpn, op.lpn + op.npages))
        assert covered == list(range(100))

    def test_uniform_random_writes_bounds(self):
        rng = np.random.default_rng(0)
        ops = uniform_random_writes(50, 200, npages=4, rng=rng)
        assert len(ops) == 200
        assert all(op.lpn + op.npages <= 50 for op in ops)

    def test_mixed_stream_ratio(self):
        rng = np.random.default_rng(0)
        ops = mixed_stream(1000, 2000, read_fraction=0.7, rng=rng)
        reads = sum(op.kind is RequestKind.READ for op in ops)
        assert 0.65 < reads / len(ops) < 0.75

    def test_burst_stream_think_structure(self):
        rng = np.random.default_rng(0)
        ops = burst_stream(1000, bursts=3, burst_len=10, idle=0.5,
                           rng=rng)
        assert len(ops) == 30
        idles = [i for i, op in enumerate(ops) if op.think_after > 0]
        assert idles == [9, 19, 29]

    def test_grouped_burst_puts_writes_first(self):
        rng = np.random.default_rng(0)
        ops = burst_stream(1000, bursts=1, burst_len=20, idle=0.0,
                           read_fraction=0.5, grouped=True, rng=rng)
        kinds = [op.kind for op in ops]
        first_read = kinds.index(RequestKind.READ)
        assert all(k is RequestKind.READ for k in kinds[first_read:])

    def test_reads_follow_writes(self):
        rng = np.random.default_rng(0)
        ops = burst_stream(10_000, bursts=2, burst_len=30, idle=0.0,
                           read_fraction=0.5, grouped=True,
                           reads_follow_writes=True, rng=rng)
        for i in range(0, len(ops), 30):
            burst = ops[i:i + 30]
            written = {op.lpn for op in burst
                       if op.kind is RequestKind.WRITE}
            for op in burst:
                if op.kind is RequestKind.READ:
                    assert op.lpn in written

    def test_validation(self):
        with pytest.raises(ValueError):
            sequential_fill(0)
        with pytest.raises(ValueError):
            burst_stream(10, bursts=0, burst_len=5, idle=0.1)
        with pytest.raises(ValueError):
            burst_stream(10, bursts=1, burst_len=5, idle=-0.1)
        with pytest.raises(ValueError):
            mixed_stream(10, 5, read_fraction=1.5)


class TestBenchmarkProfiles:
    def test_all_five_workloads_exist(self):
        assert set(PROFILES) == {"OLTP", "NTRX", "Webserver", "Varmail",
                                 "Fileserver"}

    def test_table1_ratios(self):
        assert PROFILES["OLTP"].read_write_ratio == "7:3"
        assert PROFILES["NTRX"].read_write_ratio == "3:7"
        assert PROFILES["Webserver"].read_write_ratio == "4:1"
        assert PROFILES["Varmail"].read_write_ratio == "1:1"
        assert PROFILES["Fileserver"].read_write_ratio == "1:2"

    def test_table1_intensities(self):
        assert PROFILES["OLTP"].intensiveness == "very high"
        assert PROFILES["NTRX"].intensiveness == "very high"
        assert PROFILES["Webserver"].intensiveness == "moderate"
        assert PROFILES["Varmail"].intensiveness == "high"
        assert PROFILES["Fileserver"].intensiveness == "high"

    def test_format_rw_ratio(self):
        assert format_rw_ratio(0.5) == "1:1"
        assert format_rw_ratio(0.33) == "1:2"
        assert format_rw_ratio(0.0) == "0:1"
        assert format_rw_ratio(1.0) == "1:0"

    def test_build_workload_stream_count(self):
        for name, profile in PROFILES.items():
            streams = build_workload(name, 4096, total_ops=800, seed=1)
            assert len(streams) == profile.streams

    def test_build_workload_deterministic(self):
        a = build_workload("Varmail", 4096, 400, seed=9)
        b = build_workload("Varmail", 4096, 400, seed=9)
        assert a == b

    def test_build_workload_seed_sensitivity(self):
        a = build_workload("Varmail", 4096, 400, seed=1)
        b = build_workload("Varmail", 4096, 400, seed=2)
        assert a != b

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            build_workload("bogus", 4096, 100)
        with pytest.raises(ValueError):
            build_workload("OLTP", 4096, 0)

    def test_workload_table_mentions_all(self):
        table = workload_table()
        for name in PROFILES:
            assert name in table


class TestTraceIo:
    def test_roundtrip(self, tmp_path):
        requests = [
            Request(0.0, RequestKind.WRITE, 10, 4),
            Request(0.25, RequestKind.READ, 2, 1),
        ]
        path = tmp_path / "trace.txt"
        save_trace(path, requests)
        loaded = load_trace(path)
        assert len(loaded) == 2
        assert loaded[0].kind is RequestKind.WRITE
        assert loaded[0].lpn == 10
        assert loaded[0].npages == 4
        assert loaded[1].time == pytest.approx(0.25)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n0.5 R 3 1\n")
        loaded = load_trace(path)
        assert len(loaded) == 1

    def test_malformed_lines_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0.5 R 3\n")
        with pytest.raises(ValueError):
            load_trace(path)
        path.write_text("0.5 X 3 1\n")
        with pytest.raises(ValueError):
            load_trace(path)
        path.write_text("0.5 R 3 1 victim extra\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_untagged_trace_stays_four_column(self, tmp_path):
        requests = [Request(0.0, RequestKind.WRITE, 10, 4)]
        path = tmp_path / "trace.txt"
        save_trace(path, requests)
        text = path.read_text()
        assert text.splitlines()[0] == "# time op lpn npages"
        assert all(len(line.split()) == 4
                   for line in text.splitlines()[1:])
        assert load_trace(path)[0].tenant is None

    def test_tenant_roundtrip(self, tmp_path):
        requests = [
            Request(0.0, RequestKind.WRITE, 10, 4, tenant="victim"),
            Request(0.25, RequestKind.READ, 2, 1),
        ]
        path = tmp_path / "trace.txt"
        save_trace(path, requests)
        text = path.read_text()
        assert text.splitlines()[0] == "# time op lpn npages tenant"
        assert text.splitlines()[2].endswith(" -")
        loaded = load_trace(path)
        assert loaded[0].tenant == "victim"
        assert loaded[1].tenant is None

    def test_mixed_width_lines_accepted(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0.0 W 1 1\n0.5 R 3 1 noisy\n")
        loaded = load_trace(path)
        assert loaded[0].tenant is None
        assert loaded[1].tenant == "noisy"

    def test_unstorable_tenant_names_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        for bad in ("-", "two words", ""):
            requests = [Request(0.0, RequestKind.WRITE, 1, 1,
                                tenant=bad)]
            with pytest.raises(ValueError):
                save_trace(path, requests)
