"""Tests for the generic sweep harness."""

import dataclasses

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.experiments.sweep import SweepRow, render_sweep, run_sweep
from repro.nand.geometry import NandGeometry

SMALL = ExperimentConfig(
    geometry=NandGeometry(channels=2, chips_per_channel=1,
                          blocks_per_chip=16, pages_per_block=16,
                          page_size=1024),
    buffer_pages=32,
)


class TestRunSweep:
    def test_cartesian_product(self):
        rows = run_sweep(
            axes={"buffer_pages": (16, 32), "dummy": ("a", "b")},
            config_builder=lambda p: dataclasses.replace(
                SMALL, buffer_pages=int(p["buffer_pages"])),
            workload="OLTP", total_ops=300,
        )
        assert len(rows) == 4
        combos = {(r.params["buffer_pages"], r.params["dummy"])
                  for r in rows}
        assert combos == {(16, "a"), (16, "b"), (32, "a"), (32, "b")}

    def test_results_populated(self):
        rows = run_sweep(
            axes={"buffer_pages": (16,)},
            config_builder=lambda p: SMALL,
            workload="Varmail", total_ops=300,
        )
        assert rows[0].result.iops > 0

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(axes={}, config_builder=lambda p: SMALL)


class TestRendering:
    def make_rows(self):
        return run_sweep(
            axes={"buffer_pages": (16, 32)},
            config_builder=lambda p: dataclasses.replace(
                SMALL, buffer_pages=int(p["buffer_pages"])),
            workload="OLTP", total_ops=300,
        )

    def test_render_contains_params_and_metrics(self):
        text = render_sweep(self.make_rows())
        assert "buffer_pages" in text
        assert "iops" in text

    def test_unknown_metric_rejected(self):
        rows = self.make_rows()
        with pytest.raises(KeyError):
            rows[0].cell("latency_of_doom")
        with pytest.raises(ValueError):
            render_sweep([])

    def test_metric_extraction(self):
        row = self.make_rows()[0]
        assert row.cell("iops") == pytest.approx(row.result.iops)
        assert row.cell("erases") == float(row.result.erases)
        assert row.cell("waf") == pytest.approx(
            row.result.write_amplification)
        assert row.cell("peak_bw") >= 0
