"""Property test: ``SimStats`` serialization round trips losslessly.

``SimStats.to_dict`` is the persistence boundary — experiment results,
golden fixtures and ``RunResult`` files all flow through it — so the
round trip must be exact for *every* reachable shape, including the
three-way ``faults`` distinction (absent vs attached-but-zero vs
populated) and the optional ``metrics`` registry.  200 seeded random
instances exercise the space; a handful of directed cases pin the
edge shapes explicitly.
"""

import json
import random

import pytest

from repro.observability.metrics import DEFAULT_BOUNDS, MetricsRegistry
from repro.sim.stats import FaultStats, SimStats, WindowedBandwidth

FAULT_FIELDS = [field for field in FaultStats.__dataclass_fields__
                if field != "degraded_mode"]

METRIC_NAMES = ["gc.collections", "parity.writes", "qos.admitted",
                "fault.recovered", "blocks.retired"]
LABEL_NAMES = ["chip", "tenant", "ftl", "phase"]


def random_labels(rng):
    return {name: rng.choice(["0", "3", "rps", "warmup", "tenant-a"])
            for name in rng.sample(LABEL_NAMES, rng.randint(0, 2))}


def random_metrics(rng):
    registry = MetricsRegistry()
    for _ in range(rng.randint(1, 6)):
        registry.counter(rng.choice(METRIC_NAMES),
                         **random_labels(rng)).inc(rng.randrange(1000))
    for _ in range(rng.randint(0, 3)):
        registry.gauge(rng.choice(METRIC_NAMES),
                       **random_labels(rng)).set(rng.uniform(-10, 1e6))
    for _ in range(rng.randint(0, 3)):
        bounds = DEFAULT_BOUNDS if rng.random() < 0.5 \
            else tuple(sorted(rng.sample(range(1, 200), 3)))
        histogram = registry.histogram(rng.choice(METRIC_NAMES),
                                       bounds=bounds,
                                       **random_labels(rng))
        for _ in range(rng.randrange(20)):
            histogram.observe(rng.uniform(0, 256))
    return registry


def random_faults(rng):
    faults = FaultStats()
    for field in rng.sample(FAULT_FIELDS, rng.randint(0, 5)):
        setattr(faults, field, rng.randrange(100))
    faults.degraded_mode = rng.random() < 0.2
    return faults


def random_stats(seed):
    rng = random.Random(seed)
    stats = SimStats(
        page_size=rng.choice([512, 2048, 4096, 16384]),
        bandwidth_window=rng.choice([0.01, 0.05, 0.5]),
        completed_reads=rng.randrange(10_000),
        completed_writes=rng.randrange(10_000),
        read_pages=rng.randrange(50_000),
        written_pages=rng.randrange(50_000),
        buffer_read_hits=rng.randrange(5_000),
        first_arrival=None if rng.random() < 0.1 else rng.uniform(0, 1),
        last_completion=rng.uniform(0, 100),
        read_latencies=[rng.uniform(0, 0.01)
                        for _ in range(rng.randrange(20))],
        write_latencies=[rng.uniform(0, 0.01)
                         for _ in range(rng.randrange(20))],
    )
    for _ in range(rng.randrange(50)):
        stats.write_bandwidth.record(rng.uniform(0, 10),
                                     rng.randrange(1, 1 << 20))
    shape = rng.random()
    if shape < 0.25:
        pass  # faults absent — the fault-free historical shape
    elif shape < 0.4:
        stats.faults = FaultStats()  # attached but all zero
    else:
        stats.faults = random_faults(rng)
    if rng.random() < 0.5:
        stats.metrics = random_metrics(rng)
    return stats


@pytest.mark.parametrize("seed", range(200))
def test_roundtrip_is_lossless(seed):
    stats = random_stats(seed)
    data = stats.to_dict()

    # the snapshot is genuinely JSON-safe and deterministic
    encoded = json.dumps(data, sort_keys=True)
    restored = SimStats.from_dict(json.loads(encoded))

    assert restored.to_dict() == data
    assert json.dumps(restored.to_dict(), sort_keys=True) == encoded

    # structural equality beyond the dict projection
    assert restored.write_bandwidth == stats.write_bandwidth
    assert (restored.faults is None) == (stats.faults is None)
    if stats.faults is not None:
        assert restored.faults.to_dict() == stats.faults.to_dict()
    assert (restored.metrics is None) == (stats.metrics is None)
    if stats.metrics is not None:
        assert restored.metrics == stats.metrics

    # derived quantities survive the trip
    assert restored.completed_requests == stats.completed_requests
    assert restored.elapsed == stats.elapsed
    assert restored.iops() == stats.iops()


def test_absent_faults_key_stays_absent():
    stats = SimStats()
    data = stats.to_dict()
    assert "faults" not in data and "metrics" not in data
    assert SimStats.from_dict(data).faults is None


def test_zeroed_faults_stay_attached():
    stats = SimStats(faults=FaultStats())
    restored = SimStats.from_dict(stats.to_dict())
    assert restored.faults is not None
    assert restored.faults.to_dict() == FaultStats().to_dict()


def test_reserved_label_characters_rejected():
    registry = MetricsRegistry()
    for bad in ["a,b", "x=y", "br{ce", "cl}se"]:
        with pytest.raises(ValueError):
            registry.counter("name", label=bad)
        with pytest.raises(ValueError):
            registry.counter("name", **{bad: "v"})


def test_metrics_label_rendering_roundtrips():
    registry = MetricsRegistry()
    registry.counter("gc.collections", chip=3).inc(7)
    registry.counter("gc.collections", chip=11).inc(2)
    registry.gauge("queue.depth", tenant="t0").set(4.5)
    registry.histogram("lat", bounds=(1, 10, 100)).observe(42.0)
    stats = SimStats(metrics=registry)
    restored = SimStats.from_dict(
        json.loads(json.dumps(stats.to_dict())))
    assert restored.metrics == registry
    assert restored.metrics.counter_total("gc.collections") == 9


def test_windowed_bandwidth_roundtrip_preserves_cdf():
    rng = random.Random(7)
    tracker = WindowedBandwidth(window=0.05)
    for _ in range(200):
        tracker.record(rng.uniform(0, 5), rng.randrange(1, 1 << 16))
    restored = WindowedBandwidth.from_dict(
        json.loads(json.dumps(tracker.to_dict())))
    assert restored == tracker
    assert restored.cdf() == tracker.cdf()
    assert restored.percentile(0.99) == tracker.percentile(0.99)
