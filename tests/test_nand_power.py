"""Tests for repro.nand.power: sudden power-off injection."""

import pytest

from repro.nand.array import NandArray
from repro.nand.errors import EccUncorrectableError, PageStateError
from repro.nand.geometry import NandGeometry, PhysicalPageAddress
from repro.nand.page_types import PageType, page_index
from repro.nand.power import (
    InFlightProgram,
    PowerLossInjector,
    simulate_power_loss_during_msb,
)
from repro.nand.sequence import SequenceScheme


@pytest.fixture
def array():
    geometry = NandGeometry(channels=1, chips_per_channel=1,
                            blocks_per_chip=2, pages_per_block=8,
                            page_size=64)
    return NandArray(geometry, scheme=SequenceScheme.RPS, store_data=True)


def lsb(wordline, block=0):
    return PhysicalPageAddress(0, 0, block, page_index(wordline,
                                                       PageType.LSB))


def msb(wordline, block=0):
    return PhysicalPageAddress(0, 0, block, page_index(wordline,
                                                       PageType.MSB))


class TestSpoInjection:
    def test_interrupted_msb_destroys_paired_lsb(self, array):
        for wordline in range(4):
            array.program(lsb(wordline), b"data")
        destroyed = simulate_power_loss_during_msb(array, msb(0))
        assert destroyed == lsb(0)
        with pytest.raises(EccUncorrectableError):
            array.read(lsb(0))
        # Other LSB pages are unaffected.
        assert array.read(lsb(1))[0] == b"data"

    def test_msb_page_itself_never_committed(self, array):
        for wordline in range(4):
            array.program(lsb(wordline), b"data")
        simulate_power_loss_during_msb(array, msb(0))
        with pytest.raises(EccUncorrectableError):
            array.read(msb(0))

    def test_rejects_lsb_target(self, array):
        with pytest.raises(PageStateError):
            simulate_power_loss_during_msb(array, lsb(0))

    def test_rejects_committed_msb(self, array):
        for wordline in range(4):
            array.program(lsb(wordline), b"data")
        array.program(msb(0), b"msb")
        with pytest.raises(PageStateError):
            simulate_power_loss_during_msb(array, msb(0))

    def test_rejects_missing_paired_lsb(self, array):
        with pytest.raises(PageStateError):
            simulate_power_loss_during_msb(array, msb(0))


class TestInjector:
    def test_injector_handles_mixed_in_flight_ops(self, array):
        for wordline in range(4):
            array.program(lsb(wordline), b"data")
        injector = PowerLossInjector(array)
        destroyed = injector.fire([
            InFlightProgram(msb(0), PageType.MSB),
            # An interrupted LSB program just never commits.
            InFlightProgram(lsb(4), PageType.LSB),
        ])
        assert destroyed == [lsb(0)]
        assert injector.destroyed == [lsb(0)]

    def test_injector_with_no_in_flight_ops(self, array):
        injector = PowerLossInjector(array)
        assert injector.fire([]) == []
