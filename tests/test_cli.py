"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["table1"],
            ["fig4", "--blocks", "2"],
            ["fig8", "--scale", "0.1"],
            ["recovery"],
            ["ablation", "quota"],
            ["tlc"],
            ["run", "--workload", "OLTP", "--ftl", "pageFTL"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.fn)


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "--ops", "1000"]) == 0
        out = capsys.readouterr().out
        assert "OLTP" in out
        assert "7:3" in out

    def test_fig4_small(self, capsys):
        assert main(["fig4", "--blocks", "2", "--wordlines", "8"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4(a)" in out
        assert "RPS matches FPS reliability: True" in out

    def test_tlc(self, capsys):
        assert main(["tlc", "--wordlines", "16"]) == 0
        out = capsys.readouterr().out
        assert "RPS-TLC full" in out
        assert "unconstrained" in out

    def test_tlc_burst_mode(self, capsys):
        assert main(["tlc", "--mode", "burst",
                     "--wordlines", "16"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "three-phase" in out

    def test_recovery(self, capsys):
        assert main(["recovery", "--wordlines", "16"]) == 0
        out = capsys.readouterr().out
        assert "81.92" in out
        assert "recovered=True" in out

    def test_run_rejects_unknown_workload(self, capsys):
        assert main(["run", "--workload", "nope"]) == 2

    def test_run_rejects_unknown_ftl(self, capsys):
        assert main(["run", "--ftl", "nope", "--workload", "OLTP"]) == 2
