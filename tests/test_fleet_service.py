"""Fleet service: sharding, parallel determinism, kill/resume,
memoization and the ``repro serve`` CLI."""

import json

import pytest

from repro.experiments import engine
from repro.experiments.engine import ResultCache
from repro.fleet.aggregate import FleetReport
from repro.fleet.service import FleetSpec, fleet_config, run_fleet
from repro.fleet.shard import shard_of, shard_ranges, split


def small_fleet(**overrides):
    params = dict(devices=6, ops_per_device=80, seed=9,
                  config=fleet_config())
    params.update(overrides)
    return FleetSpec(**params)


class TestSharding:
    def test_ranges_cover_contiguously(self):
        for devices in (0, 1, 5, 7, 64, 100):
            for workers in (1, 2, 3, 7, 64):
                ranges = shard_ranges(devices, workers)
                flat = [i for start, stop in ranges
                        for i in range(start, stop)]
                assert flat == list(range(devices))
                assert all(stop > start for start, stop in ranges)

    def test_earlier_shards_take_remainder(self):
        assert shard_ranges(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_workers_clamped_to_devices(self):
        assert shard_ranges(3, 8) == [(0, 1), (1, 2), (2, 3)]
        assert shard_ranges(0, 8) == []

    def test_shard_of_matches_ranges(self):
        for device_id in range(10):
            index = shard_of(device_id, 10, 4)
            start, stop = shard_ranges(10, 4)[index]
            assert start <= device_id < stop

    def test_split(self):
        assert split(list("abcde"), 2) == [["a", "b", "c"],
                                           ["d", "e"]]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            shard_ranges(-1, 2)
        with pytest.raises(ValueError):
            shard_ranges(4, 0)


class TestFleetDeterminism:
    def test_parallel_equals_serial(self):
        fleet = small_fleet()
        serial = run_fleet(fleet, jobs=1)
        parallel = run_fleet(fleet, jobs=2)
        assert parallel.workers == 2
        assert (serial.report.fingerprint()
                == parallel.report.fingerprint())
        assert (json.dumps(serial.report.to_dict(), sort_keys=True)
                == json.dumps(parallel.report.to_dict(),
                              sort_keys=True))

    def test_kill_resume_equals_uninterrupted(self, tmp_path):
        fleet = small_fleet()
        oracle = run_fleet(fleet, jobs=1)
        assert oracle.report.completed == fleet.devices

        ckpt = tmp_path / "ckpt"
        stopped = run_fleet(fleet, jobs=1, checkpoint_dir=str(ckpt),
                            stop_after_events=300)
        assert stopped.report.checkpointed == fleet.devices
        assert stopped.checkpoints == fleet.devices
        assert len(list(ckpt.glob("*.snap"))) == fleet.devices

        resumed = run_fleet(fleet, jobs=2, checkpoint_dir=str(ckpt),
                            resume=True)
        assert resumed.resumed == fleet.devices
        assert resumed.report.completed == fleet.devices
        assert (resumed.report.fingerprint()
                == oracle.report.fingerprint())
        # Completed devices retire their stale checkpoints.
        assert list(ckpt.glob("*.snap")) == []

    def test_tenanted_kill_resume(self, tmp_path):
        fleet = small_fleet(devices=4, tenants=2)
        oracle = run_fleet(fleet, jobs=1)
        ckpt = tmp_path / "ckpt"
        run_fleet(fleet, jobs=1, checkpoint_dir=str(ckpt),
                  stop_after_events=250)
        resumed = run_fleet(fleet, jobs=1, checkpoint_dir=str(ckpt),
                            resume=True)
        assert (resumed.report.fingerprint()
                == oracle.report.fingerprint())
        assert resumed.report.per_tenant() == \
            oracle.report.per_tenant()
        assert set(resumed.report.per_tenant()) == \
            {"tenant0", "tenant1"}

    def test_devices_see_distinct_workloads(self):
        fleet = small_fleet(devices=3)
        result = run_fleet(fleet, jobs=1)
        prints = {r["fingerprint"]
                  for r in result.report.device_results}
        assert len(prints) == 3

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_fleet(small_fleet(), resume=True)


class TestFleetMemoization:
    def test_second_pass_hits_cache(self, tmp_path):
        fleet = small_fleet(devices=3)
        cache = ResultCache(root=tmp_path / "cache")
        first = run_fleet(fleet, jobs=1, cache=cache)
        assert first.cache_hits == 0
        second = run_fleet(fleet, jobs=1, cache=cache)
        assert second.cache_hits == 3
        assert (json.dumps(first.report.to_dict(), sort_keys=True)
                == json.dumps(second.report.to_dict(),
                              sort_keys=True))

    def test_partial_pass_skips_cache(self, tmp_path):
        fleet = small_fleet(devices=2)
        cache = ResultCache(root=tmp_path / "cache")
        run_fleet(fleet, jobs=1, cache=cache)
        partial = run_fleet(fleet, jobs=1, cache=cache,
                            checkpoint_dir=str(tmp_path / "ckpt"),
                            stop_after_events=200)
        assert partial.cache_hits == 0
        assert partial.report.checkpointed == 2

    def test_cache_rejects_foreign_version(self, tmp_path,
                                           monkeypatch):
        cache = ResultCache(root=tmp_path / "cache")
        cache.put("a" * 64, "fleet_device", {"completed": True})
        assert cache.get("a" * 64) is not None
        monkeypatch.setattr(engine, "__version__", "0.0.0-foreign")
        assert cache.get("a" * 64) is None


class TestFleetReport:
    @staticmethod
    def device(device_id, erases, iops, tenants=None):
        return {
            "device_id": device_id,
            "ftl_name": "flexFTL",
            "completed": True,
            "events": 100,
            "measured_events": 90,
            "sim_now": "0.1",
            "elapsed": 0.1,
            "completed_requests": 50,
            "iops": iops,
            "counters": {"host_programs": 40, "gc_programs": 10,
                         "erases": erases},
            "erases": erases,
            "write_amplification": 50 / 40,
            "fingerprint": f"f{device_id}",
            "tenants": tenants or {},
        }

    def test_totals_math(self):
        report = FleetReport([self.device(1, erases=4, iops=1000.0),
                              self.device(0, erases=8, iops=3000.0)])
        totals = report.totals()
        assert totals["devices"] == 2
        assert totals["completed_devices"] == 2
        assert totals["events"] == 200
        assert totals["completed_requests"] == 100
        assert totals["erases_total"] == 12
        assert totals["erases_max"] == 8
        assert totals["erases_mean"] == 6.0
        assert totals["counters"]["host_programs"] == 80
        assert totals["write_amplification"] == \
            pytest.approx(100 / 80)
        assert totals["iops_sum"] == 4000.0
        assert totals["iops_mean"] == 2000.0

    def test_results_sorted_and_fingerprint_order_free(self):
        a = [self.device(0, 1, None), self.device(1, 1, None)]
        b = list(reversed(a))
        assert (FleetReport(a).fingerprint()
                == FleetReport(b).fingerprint())
        assert [r["device_id"]
                for r in FleetReport(b).device_results] == [0, 1]

    def test_per_tenant_rollup(self):
        t0 = {"reads": 10, "writes": 5, "read_violations": 1,
              "write_violations": 0, "read_p99": 0.002,
              "write_p99": 0.004}
        t1 = {"reads": 20, "writes": 15, "read_violations": 0,
              "write_violations": 2, "read_p99": 0.001,
              "write_p99": 0.008}
        report = FleetReport([
            self.device(0, 1, None, tenants={"tenant0": t0}),
            self.device(1, 1, None, tenants={"tenant0": t1}),
        ])
        tenant = report.per_tenant()["tenant0"]
        assert tenant["devices"] == 2
        assert tenant["reads"] == 30
        assert tenant["write_violations"] == 2
        assert tenant["write_p99_max"] == 0.008
        assert tenant["write_p99_mean"] == pytest.approx(0.006)

    def test_to_metrics_publishes(self):
        report = FleetReport([self.device(0, erases=4, iops=500.0)])
        registry = report.to_metrics()
        counters = registry.to_dict()["counters"]
        assert counters["fleet.devices"] == 1
        assert counters["fleet.erases"] == 4
        assert counters["fleet.ftl{counter=host_programs}"] == 40

    def test_render_mentions_fingerprint(self):
        report = FleetReport([self.device(0, 1, None)])
        assert "fingerprint" in report.render()
        assert "devices" in report.render()


class TestServeCli:
    def test_serve_smoke(self, tmp_path, capsys):
        from repro.cli import main
        ckpt = tmp_path / "ckpt"
        args = ["serve", "--devices", "4", "--ops", "60",
                "--tenants", "2", "--no-cache"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "fleet report" in out
        assert "tenant0" in out

        assert main(args[:-1] + ["--no-cache", "--checkpoint-dir",
                                 str(ckpt),
                                 "--stop-after-events", "200"]) == 0
        capsys.readouterr()
        assert main(args + ["--checkpoint-dir", str(ckpt),
                            "--resume", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["totals"]["completed_devices"] == 4
        assert payload["service"]["resumed_devices"] == 4

    def test_serve_rejects_unknown_ftl(self):
        from repro.cli import main
        assert main(["serve", "--ftl", "nope"]) != 0

    def test_serve_rejects_resume_without_dir(self):
        from repro.cli import main
        assert main(["serve", "--resume"]) != 0

    def test_serve_kernel_choices(self):
        from repro.cli import main
        assert main(["serve", "--devices", "2", "--ops", "40",
                     "--kernel", "heap", "--no-cache"]) == 0
