"""Checkpoint/resume determinism: snapshot → resume == uninterrupted.

The fleet's backbone claim is byte-identity: a run checkpointed at an
arbitrary event boundary and resumed produces exactly the same
SimStats, FTL counters and clock as the run that never stopped.  These
tests assert it per kernel (calendar and heap), per FTL (pageFTL and
flexFTL), for vector stepping, for a QoS-fronted device, and for a
snapshot taken *between* the multi-cut power losses of the PR-4
machinery.
"""

import json

import pytest

from repro.experiments.runner import ExperimentConfig, scenario_host
from repro.faults.recovery import recover_after_power_loss
from repro.fleet.device import DeviceRun, DeviceSpec
from repro.fleet.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotFormatError,
    SnapshotMismatchError,
    read_snapshot,
    read_snapshot_header,
    write_snapshot,
)
from repro.nand.geometry import NandGeometry
from repro.scenarios.base import TenantBinding
from repro.scenarios.presets import make_preset
from repro.sim.powerloss import ScheduledPowerLoss

GEOMETRY = NandGeometry(channels=2, chips_per_channel=1,
                        blocks_per_chip=16, pages_per_block=16,
                        page_size=4096)


def config_for(kernel="calendar", stepping="auto"):
    return ExperimentConfig(geometry=GEOMETRY, track_history=False,
                            kernel=kernel, stepping=stepping)


def spec_for(kernel="calendar", stepping="auto", ftl="flexFTL",
             tenants=0, device_id=0, ops=240, seed=11):
    scenario = make_preset("oltp", footprint=96, total_ops=ops,
                           seed=seed)
    spec = scenario.spec()
    if tenants:
        streams = int(spec["streams"])
        base, extra = divmod(streams, tenants)
        spec["tenants"] = [
            TenantBinding(name=f"t{i}",
                          streams=base + (1 if i < extra else 0)
                          ).to_dict()
            for i in range(tenants)
        ]
    return DeviceSpec(
        device_id=device_id,
        ftl_name=ftl,
        scenario=spec,
        config=config_for(kernel, stepping),
        arbiter="wrr" if tenants else None,
    )


def surface(run):
    """The full byte-comparable trace surface of a device run."""
    return json.dumps(
        {"stats": run.controller.stats.to_dict(),
         "counters": dict(run.ftl.counters()),
         "now": repr(run.sim.now),
         "events": run.sim.processed,
         "erases": run.array.total_erases},
        sort_keys=True)


class TestDeviceRoundTrip:
    @pytest.mark.parametrize("kernel", ["calendar", "heap"])
    @pytest.mark.parametrize("ftl", ["pageFTL", "flexFTL"])
    def test_resume_equals_uninterrupted(self, tmp_path, kernel, ftl):
        spec = spec_for(kernel=kernel, ftl=ftl)

        oracle = DeviceRun.build(spec)
        oracle.run_to_completion()

        run = DeviceRun.build(spec)
        run.advance(700)
        assert not run.done  # mid-run: the checkpoint is non-trivial
        path = tmp_path / "dev.snap"
        header = run.save(path)
        assert header["kernel"] == kernel
        assert header["format_version"] == SNAPSHOT_FORMAT_VERSION

        resumed = DeviceRun.load(path, expect_config=spec.config)
        resumed.run_to_completion()

        assert surface(resumed) == surface(oracle)
        assert resumed.fingerprint() == oracle.fingerprint()

    @pytest.mark.parametrize("kernel", ["calendar", "heap"])
    def test_interrupted_continues_like_original(self, tmp_path,
                                                 kernel):
        """The snapshot does not perturb the run it was taken from."""
        spec = spec_for(kernel=kernel)
        run = DeviceRun.build(spec)
        run.advance(500)
        path = tmp_path / "dev.snap"
        run.save(path)
        run.run_to_completion()

        resumed = DeviceRun.load(path, expect_config=spec.config)
        resumed.run_to_completion()
        assert surface(resumed) == surface(run)

    def test_vector_stepping_roundtrip(self, tmp_path):
        spec = spec_for(stepping="vector")
        oracle = DeviceRun.build(spec)
        oracle.run_to_completion()

        run = DeviceRun.build(spec)
        run.advance(600)
        path = tmp_path / "dev.snap"
        run.save(path)
        resumed = DeviceRun.load(path, expect_config=spec.config)
        # The unified store (numpy view + memoryview slices) must be
        # re-established, aliasing intact.
        assert resumed.array._np_states is not None
        blk = resumed.array.chips[0].blocks[0]
        assert type(blk._states) is not bytearray
        resumed.run_to_completion()
        assert surface(resumed) == surface(oracle)

    def test_qos_device_roundtrip(self, tmp_path):
        spec = spec_for(tenants=2, ops=200)
        oracle = DeviceRun.build(spec)
        oracle.run_to_completion()

        run = DeviceRun.build(spec)
        run.advance(400)
        path = tmp_path / "dev.snap"
        run.save(path)
        resumed = DeviceRun.load(path, expect_config=spec.config)
        resumed.run_to_completion()

        assert surface(resumed) == surface(oracle)
        assert (resumed.host.accountant.summary()
                == oracle.host.accountant.summary())
        assert resumed.result() == oracle.result()


class TestHeaderValidation:
    def test_kernel_mismatch_refused(self, tmp_path):
        spec = spec_for(kernel="calendar")
        run = DeviceRun.build(spec)
        run.advance(200)
        path = tmp_path / "dev.snap"
        run.save(path)
        with pytest.raises(SnapshotMismatchError,
                           match="calendar.*heap|heap.*calendar"):
            DeviceRun.load(path,
                           expect_config=config_for(kernel="heap"))

    def test_stepping_mismatch_refused(self, tmp_path):
        spec = spec_for(stepping="batch")
        run = DeviceRun.build(spec)
        run.advance(200)
        path = tmp_path / "dev.snap"
        run.save(path)
        with pytest.raises(SnapshotMismatchError, match="stepping"):
            DeviceRun.load(path,
                           expect_config=config_for(stepping="event"))

    def test_auto_and_event_stepping_compatible(self, tmp_path):
        """'auto' resolves to event stepping; the two spellings must
        resume each other."""
        run = DeviceRun.build(spec_for(stepping="auto"))
        run.advance(200)
        path = tmp_path / "dev.snap"
        header = run.save(path)
        assert header["stepping"] == "event"
        DeviceRun.load(path,
                       expect_config=config_for(stepping="event"))

    def test_header_readable_without_payload(self, tmp_path):
        run = DeviceRun.build(spec_for())
        run.advance(300)
        path = tmp_path / "dev.snap"
        run.save(path)
        header = read_snapshot_header(path)
        assert header["kind"] == "device_run"
        assert header["events"] == run.sim.processed
        assert header["device_id"] == 0

    def test_corrupt_payload_detected(self, tmp_path):
        run = DeviceRun.build(spec_for())
        run.advance(200)
        path = tmp_path / "dev.snap"
        run.save(path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotFormatError, match="integrity"):
            DeviceRun.load(path)

    def test_truncation_detected(self, tmp_path):
        run = DeviceRun.build(spec_for())
        run.advance(200)
        path = tmp_path / "dev.snap"
        run.save(path)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(SnapshotFormatError, match="truncated"):
            DeviceRun.load(path)

    def test_not_a_snapshot_rejected(self, tmp_path):
        path = tmp_path / "junk.snap"
        path.write_bytes(b"definitely not a snapshot file")
        with pytest.raises(SnapshotFormatError, match="magic"):
            read_snapshot_header(path)

    def test_version_skew_warns(self, tmp_path):
        path = tmp_path / "skew.snap"
        write_snapshot(path, {"x": 1},
                       {"kernel": "calendar", "stepping": "event"})
        blob = path.read_bytes()
        # Rewrite the header with a foreign package version.
        import struct
        magic_len = 8
        (hlen,) = struct.unpack(">I",
                                blob[magic_len:magic_len + 4])
        header = json.loads(blob[magic_len + 4:magic_len + 4 + hlen])
        header["package_version"] = "0.0.0-elsewhere"
        hbytes = json.dumps(header, sort_keys=True,
                            separators=(",", ":")).encode()
        path.write_bytes(blob[:magic_len]
                         + struct.pack(">I", len(hbytes)) + hbytes
                         + blob[magic_len + 4 + hlen:])
        with pytest.warns(UserWarning, match="0.0.0-elsewhere"):
            read_snapshot(path)


class TestSnapshotBetweenPowerCuts:
    def test_between_cuts_resume_matches(self, tmp_path):
        """A checkpoint taken after the first power-loss recovery and
        before the second cut resumes into an identical end state —
        the PR-4 multi-cut machinery (armed cut event, recovery state,
        resumed host) all rides in the snapshot."""
        from repro.experiments.runner import (
            begin_measured_phase,
            build_system,
            warmup_device,
        )
        from repro.scenarios.base import scenario_from_spec

        def build():
            config = config_for()
            scenario = scenario_from_spec(
                make_preset("oltp", footprint=96, total_ops=300,
                            seed=4).spec())
            sim, array, buffer, ftl, controller = build_system(
                "flexFTL", config)
            warmup_device(sim, controller, ftl, config,
                          footprint=scenario.footprint)
            begin_measured_phase(controller, ftl, config)
            host = scenario_host(sim, controller, scenario)
            power = ScheduledPowerLoss(
                sim, controller,
                at_times=[sim.now + 0.004, sim.now + 0.012])
            host.start()
            return sim, array, ftl, controller, host, power

        def run_through_cuts(state, recovered):
            sim, array, ftl, controller, host, power = state
            while True:
                sim.run()
                if len(power.reports) <= recovered:
                    break
                report = power.reports[recovered]
                recover_after_power_loss(controller, report)
                recovered += 1
                host.resume()
                power.arm_next()
                controller._pump()
            return recovered

        # Oracle: straight through both cuts.
        oracle = build()
        cuts = run_through_cuts(oracle, 0)
        assert cuts == 2  # both cuts fired

        # Interrupted: run to the first cut, recover, checkpoint.
        state = build()
        sim, array, ftl, controller, host, power = state
        sim.run()
        assert len(power.reports) == 1
        recover_after_power_loss(controller, power.reports[0])
        host.resume()
        power.arm_next()
        controller._pump()
        path = tmp_path / "mid.snap"
        write_snapshot(
            path,
            {"state": state, "recovered": 1},
            {"kernel": "calendar", "stepping": "event"})

        _header, payload = read_snapshot(path,
                                         expect_kernel="calendar")
        resumed = payload["state"]
        run_through_cuts(resumed, payload["recovered"])

        def end_state(s):
            sim, array, ftl, controller, host, power = s
            return json.dumps(
                {"stats": controller.stats.to_dict(),
                 "counters": dict(ftl.counters()),
                 "now": repr(sim.now),
                 "erases": array.total_erases,
                 "cuts": len(power.reports)},
                sort_keys=True)

        assert end_state(resumed) == end_state(oracle)


class TestHostPicklability:
    def test_streaming_host_without_scenario_refuses(self):
        import pickle

        from repro.experiments.runner import build_system
        from repro.scenarios.host import StreamingClosedLoopHost

        sim, _a, _b, _f, controller = build_system("pageFTL",
                                                   config_for())
        scenario = make_preset("oltp", footprint=64, total_ops=50,
                               seed=1)
        host = StreamingClosedLoopHost(sim, controller,
                                       scenario.op_streams())
        host.start()
        with pytest.raises(TypeError, match="scenario"):
            pickle.dumps(host)

    def test_tracer_blocks_snapshot(self, tmp_path):
        from repro.fleet.snapshot import SnapshotError
        from repro.observability.tracer import Tracer

        run = DeviceRun.build(spec_for())
        tracer = Tracer()
        tracer.install(run.controller)
        try:
            with pytest.raises(SnapshotError, match="tracer"):
                run.save(tmp_path / "dev.snap")
        finally:
            tracer.detach()
        # Detached again, the device snapshots fine.
        run.save(tmp_path / "dev.snap")
