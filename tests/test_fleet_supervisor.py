"""Fleet supervisor: recovery, retries, quarantine, durability.

The supervision contract has two halves.  *Robustness*: killed, hung
and crashing workers are detected, retried with deterministic backoff
and — for poison devices — quarantined, so the fleet degrades instead
of dying.  *Determinism*: none of that machinery may change a single
simulated byte — every recovered run reports the fingerprint of the
undisturbed run, and a degraded run reports exactly the fingerprint of
its surviving devices.
"""

import json
import os

import pytest

from repro.execpolicy import (
    Deadline,
    DeadlineExceeded,
    backoff_delay,
    stable_seed,
)
from repro.fleet import (
    ChaosEvent,
    ChaosPlan,
    CircuitOpenError,
    FleetReport,
    FleetSpec,
    ShardFailedError,
    SupervisionPolicy,
    poison_device,
    random_plan,
    run_fleet,
)
from repro.fleet.chaos import CHAOS_KINDS, ChaosRuntime
from repro.fleet.device import DeviceRun
from repro.fleet.snapshot import SnapshotMismatchError, write_snapshot
from repro.fleet.worker import checkpoint_path
from repro.fleet import snapshot as snapshot_module


def small_fleet(devices=6, seed=9, **kw):
    return FleetSpec(devices=devices, ops_per_device=80, seed=seed,
                     **kw)


def fast_policy(**kw):
    """A supervision policy tuned for test latency."""
    defaults = dict(heartbeat_interval=0.05, heartbeat_timeout=15.0,
                    backoff_base=0.02, backoff_cap=0.1)
    defaults.update(kw)
    return SupervisionPolicy(**defaults)


# ---------------------------------------------------------------------------
# policy and backoff


class TestSupervisionPolicy:
    def test_roundtrip(self):
        policy = SupervisionPolicy(shard_deadline=12.0,
                                   max_fleet_failures=5)
        assert SupervisionPolicy.from_dict(policy.to_dict()) == policy

    @pytest.mark.parametrize("bad", [
        {"heartbeat_interval": 0},
        {"heartbeat_timeout": -1},
        {"shard_deadline": 0},
        {"max_retries": -1},
        {"device_retry_budget": 0},
        {"max_fleet_failures": 0},
        {"poll_interval": 0},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            SupervisionPolicy(**bad)


class TestBackoff:
    def test_deterministic(self):
        a = backoff_delay(0.25, 5.0, 2, 9, "supervise", 0, 3)
        b = backoff_delay(0.25, 5.0, 2, 9, "supervise", 0, 3)
        assert a == b

    def test_coordinates_matter(self):
        delays = {backoff_delay(0.25, 5.0, 2, 9, "supervise", s, 3)
                  for s in range(8)}
        assert len(delays) > 1  # jitter varies by coordinate

    def test_caps_and_grows(self):
        base, cap = 0.25, 5.0
        delays = [backoff_delay(base, cap, n, 1, "x") for n in
                  range(1, 12)]
        assert all(d <= cap for d in delays)
        # Equal-jitter keeps every delay at >= half its exponential
        # envelope, so the schedule trends upward until the cap.
        assert delays[0] >= base * 0.5
        assert delays[5] > delays[0]

    def test_stable_seed_is_stable(self):
        assert stable_seed(9, "a", 1) == stable_seed(9, "a", 1)
        assert stable_seed(9, "a", 1) != stable_seed(9, "a", 2)


class TestDeadlineHelper:
    def test_unbounded(self):
        deadline = Deadline(None)
        assert deadline.remaining() is None
        assert not deadline.expired()

    def test_expires(self):
        deadline = Deadline(1e-9)
        import time
        time.sleep(0.01)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        assert issubclass(DeadlineExceeded, Exception)
        with pytest.raises(ValueError, match="positive"):
            Deadline(0.0)


# ---------------------------------------------------------------------------
# chaos plans


class TestChaosPlan:
    def test_roundtrip(self):
        plan = ChaosPlan(seed=7, events=(
            ChaosEvent(kind="kill", shard=0, at=3),
            ChaosEvent(kind="device_crash", shard=1, device=5,
                       attempt=1),
        ))
        assert ChaosPlan.from_dict(plan.to_dict()) == plan

    def test_from_spec_inline_and_file(self, tmp_path):
        data = {"seed": 3, "events": [{"kind": "hang", "shard": 1,
                                       "at": 2}]}
        inline = ChaosPlan.from_spec(json.dumps(data))
        file_path = tmp_path / "plan.json"
        file_path.write_text(json.dumps(data))
        assert ChaosPlan.from_spec(str(file_path)) == inline
        assert inline.events[0].kind == "hang"

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ChaosEvent(kind="meteor", shard=0)
        with pytest.raises(ValueError, match="device"):
            ChaosEvent(kind="device_crash", shard=0)
        with pytest.raises(ValueError, match="JSON"):
            ChaosPlan.from_spec("{not json")

    def test_attempt_selection(self):
        plan = ChaosPlan(events=(
            ChaosEvent(kind="kill", shard=0, attempt=0),
            ChaosEvent(kind="submit_error", shard=0, attempt=1),
        ))
        assert [e.kind for e in plan.for_attempt(0, 0)] == ["kill"]
        assert plan.submit_error(0, 1)
        assert not plan.submit_error(0, 0)
        assert not plan.for_attempt(1, 0)

    def test_poison_device_helper(self):
        events = poison_device(4, 1, attempts=3)
        assert len(events) == 3
        assert {e.attempt for e in events} == {0, 1, 2}
        assert all(e.device == 4 and e.shard == 1 for e in events)

    def test_random_plan_deterministic(self):
        a = random_plan(5, shards=4, max_turn=10, events=2)
        assert a == random_plan(5, shards=4, max_turn=10, events=2)
        assert a.enabled
        assert all(e.attempt == 0 and e.kind in CHAOS_KINDS
                   for e in a.events)

    def test_runtime_noop_without_events(self):
        runtime = ChaosRuntime(ChaosPlan(), shard=0, attempt=0)
        runtime.install()
        for turn in range(10):
            runtime.on_advance(device_id=turn)
        assert snapshot_module._before_rename_hook is None


# ---------------------------------------------------------------------------
# supervised serving


class TestSupervisedFleet:
    def test_supervised_matches_unsupervised(self):
        fleet = small_fleet()
        oracle = run_fleet(fleet, jobs=1)
        supervised = run_fleet(fleet, jobs=2,
                               supervise=fast_policy())
        assert supervised.report.fingerprint() \
            == oracle.report.fingerprint()
        assert supervised.supervised
        health = supervised.report.health
        assert health["retries_total"] == 0
        assert health["kills_total"] == 0
        assert health["attempts_total"] == 2
        assert all(s["heartbeats"] >= 1 for s in health["shards"])
        assert not supervised.report.degraded

    def test_chaos_requires_supervision(self):
        plan = ChaosPlan(events=(ChaosEvent(kind="kill", shard=0),))
        with pytest.raises(ValueError, match="supervise"):
            run_fleet(small_fleet(), jobs=2, chaos=plan)

    def test_kill_recovers_to_oracle(self, tmp_path):
        fleet = small_fleet()
        oracle = run_fleet(fleet, jobs=1)
        plan = ChaosPlan(seed=1, events=(
            ChaosEvent(kind="kill", shard=0, at=3),))
        result = run_fleet(fleet, jobs=2, supervise=fast_policy(),
                           chaos=plan,
                           checkpoint_dir=str(tmp_path),
                           checkpoint_every=30, quantum=16)
        assert result.report.fingerprint() \
            == oracle.report.fingerprint()
        health = result.report.health
        assert health["kills_total"] == 1
        assert health["shards"][0]["kills"] == ["worker_died"]
        assert health["retries_total"] == 1
        assert health["wall_lost"] > 0

    def test_hang_detected_and_killed(self, tmp_path):
        fleet = small_fleet(devices=4)
        oracle = run_fleet(fleet, jobs=1)
        plan = ChaosPlan(seed=2, events=(
            ChaosEvent(kind="hang", shard=1, at=2,
                       hang_seconds=3600.0),))
        policy = fast_policy(heartbeat_timeout=1.5)
        result = run_fleet(fleet, jobs=2, supervise=policy,
                           chaos=plan,
                           checkpoint_dir=str(tmp_path),
                           checkpoint_every=30, quantum=16)
        assert result.report.fingerprint() \
            == oracle.report.fingerprint()
        assert result.report.health["shards"][1]["kills"] == ["hung"]

    def test_checkpoint_crash_recovers(self, tmp_path):
        """SIGKILL between a checkpoint's tmp-write and its rename
        leaves the previous snapshot intact; the retry resumes and
        still lands on the oracle fingerprint."""
        fleet = small_fleet(devices=4)
        oracle = run_fleet(fleet, jobs=1)
        plan = ChaosPlan(seed=3, events=(
            ChaosEvent(kind="checkpoint_crash", shard=0, at=1),))
        result = run_fleet(fleet, jobs=2, supervise=fast_policy(),
                           chaos=plan,
                           checkpoint_dir=str(tmp_path),
                           checkpoint_every=20, quantum=16)
        assert result.report.fingerprint() \
            == oracle.report.fingerprint()
        assert result.report.health["shards"][0]["kills"] \
            == ["worker_died"]

    def test_submit_error_retried(self):
        fleet = small_fleet(devices=4)
        oracle = run_fleet(fleet, jobs=1)
        plan = ChaosPlan(seed=4, events=(
            ChaosEvent(kind="submit_error", shard=0),))
        result = run_fleet(fleet, jobs=2, supervise=fast_policy(),
                           chaos=plan)
        assert result.report.fingerprint() \
            == oracle.report.fingerprint()
        assert result.report.health["shards"][0]["kills"] \
            == ["submit_error"]

    def test_retry_budget_exhaustion(self):
        # Quarantine off: a device that crashes on every attempt must
        # eventually fail its shard with the typed error.
        fleet = small_fleet(devices=4)
        plan = ChaosPlan(seed=5,
                         events=poison_device(1, 0, attempts=5))
        policy = fast_policy(max_retries=2, quarantine=False)
        with pytest.raises(ShardFailedError) as excinfo:
            run_fleet(fleet, jobs=2, supervise=policy, chaos=plan)
        assert excinfo.value.shard == 0
        assert "device_failure" in excinfo.value.reasons

    def test_circuit_breaker(self):
        fleet = small_fleet(devices=4)
        plan = ChaosPlan(seed=6,
                         events=poison_device(1, 0, attempts=5))
        policy = fast_policy(max_fleet_failures=1, quarantine=False)
        with pytest.raises(CircuitOpenError) as excinfo:
            run_fleet(fleet, jobs=2, supervise=policy, chaos=plan)
        assert excinfo.value.budget == 1

    def test_quarantine_degrades_gracefully(self, tmp_path):
        fleet = small_fleet(devices=6)
        oracle = run_fleet(fleet, jobs=1)
        poison = 2
        plan = ChaosPlan(seed=7,
                         events=poison_device(poison, 0, attempts=4,
                                              at=1))
        policy = fast_policy(device_retry_budget=2)
        result = run_fleet(fleet, jobs=2, supervise=policy,
                           chaos=plan,
                           checkpoint_dir=str(tmp_path),
                           checkpoint_every=30, quantum=16)
        report = result.report
        assert report.degraded
        assert [q["device_id"] for q in report.quarantined] == [poison]
        assert report.devices == fleet.devices - 1
        assert all(r["device_id"] != poison
                   for r in report.device_results)
        # Partial-fingerprint semantics: the degraded run reports
        # exactly the fingerprint of its surviving devices.
        survivors = [r for r in oracle.report.device_results
                     if r["device_id"] != poison]
        assert report.fingerprint() \
            == FleetReport(survivors).fingerprint()
        # The quarantined device's checkpoint must not linger.
        assert not checkpoint_path(tmp_path, poison).exists()
        totals = report.totals()
        assert totals["quarantined_devices"] == 1
        assert totals["degraded"] is True

    def test_health_surfaces(self):
        fleet = small_fleet(devices=4)
        plan = ChaosPlan(seed=8, events=(
            ChaosEvent(kind="kill", shard=0, at=2),))
        result = run_fleet(fleet, jobs=2, supervise=fast_policy(),
                           chaos=plan, quantum=16)
        payload = result.to_dict()
        assert payload["health"]["kills_total"] == 1
        assert payload["health"]["policy"]["max_retries"] == 3
        assert payload["health"]["chaos"]["events"][0]["kind"] \
            == "kill"
        assert payload["service"]["supervised"] is True
        registry = result.report.to_metrics()
        assert registry.counter_total("fleet.supervisor.kills") == 1
        assert registry.counter_total("fleet.supervisor.attempts") \
            == 3
        assert "supervision" in result.render()


class TestServeCliSupervised:
    def test_serve_supervised_chaos_drill(self, tmp_path, capsys):
        from repro.cli import main

        spec = json.dumps({"events": [
            {"kind": "kill", "shard": 0, "at": 2}]})
        args = ["serve", "--devices", "4", "--ops", "60",
                "--no-cache", "--jobs", "2", "--quantum", "16",
                "--supervise", "--heartbeat-interval", "0.05",
                "--backoff-base", "0.02", "--backoff-cap", "0.1",
                "--checkpoint-dir", str(tmp_path / "ckpt"),
                "--checkpoint-every", "30",
                "--chaos", spec, "--json"]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["health"]["kills_total"] == 1
        assert payload["health"]["shards"][0]["kills"] \
            == ["worker_died"]
        assert payload["service"]["supervised"] is True

        # Oracle: the same fleet, unsupervised and undisturbed.
        assert main(["serve", "--devices", "4", "--ops", "60",
                     "--no-cache", "--json"]) == 0
        oracle = json.loads(capsys.readouterr().out)
        assert payload["totals"]["fingerprint"] \
            == oracle["totals"]["fingerprint"]

    def test_serve_chaos_requires_supervise(self):
        from repro.cli import main
        assert main(["serve", "--chaos", "{}"]) != 0

    def test_serve_rejects_bad_chaos_spec(self):
        from repro.cli import main
        assert main(["serve", "--supervise",
                     "--chaos", "{broken"]) != 0

    def test_serve_rejects_bad_policy(self):
        from repro.cli import main
        assert main(["serve", "--supervise",
                     "--heartbeat-timeout", "-1"]) != 0


# ---------------------------------------------------------------------------
# satellite 1: crash-safe snapshot writes


class TestSnapshotDurability:
    def test_write_fsyncs_file_and_directory(self, tmp_path,
                                             monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: (synced.append(fd),
                                        real_fsync(fd))[1])
        write_snapshot(tmp_path / "x.snap", {"v": 1},
                       {"kernel": "calendar", "stepping": "event"})
        # At least the payload fd plus the directory fd (twice: once
        # before the rename makes it visible, once after).
        assert len(synced) >= 3

    def test_truncated_snapshot_rebuilds_to_oracle(self, tmp_path):
        """A device snapshot torn mid-write (host crash before the
        fsync completed, disk damage) must not poison the resume: the
        device is rebuilt from scratch, and because rebuilding is
        deterministic the resumed fleet still reports the oracle
        fingerprint."""
        fleet = small_fleet(devices=4)
        oracle = run_fleet(fleet, jobs=1)

        run_fleet(fleet, jobs=1, checkpoint_dir=str(tmp_path),
                  stop_after_events=150)
        victim = checkpoint_path(tmp_path, 1)
        blob = victim.read_bytes()
        victim.write_bytes(blob[:len(blob) // 2])

        resumed = run_fleet(fleet, jobs=1,
                            checkpoint_dir=str(tmp_path),
                            resume=True)
        assert resumed.report.fingerprint() \
            == oracle.report.fingerprint()
        assert resumed.rebuilt == 1
        assert resumed.resumed == 3
        assert resumed.to_dict()["service"]["rebuilt_devices"] == 1


# ---------------------------------------------------------------------------
# satellite 2: stale-checkpoint refusal


class TestStaleCheckpointRefusal:
    def test_foreign_fleet_checkpoints_refused(self, tmp_path):
        fleet_a = small_fleet(seed=9)
        fleet_b = small_fleet(seed=10)
        assert fleet_a.content_hash() != fleet_b.content_hash()

        run_fleet(fleet_a, jobs=1, checkpoint_dir=str(tmp_path),
                  stop_after_events=150)
        with pytest.raises(SnapshotMismatchError, match="fleet"):
            run_fleet(fleet_b, jobs=1, checkpoint_dir=str(tmp_path),
                      resume=True)

    def test_same_fleet_checkpoints_accepted(self, tmp_path):
        fleet = small_fleet()
        oracle = run_fleet(fleet, jobs=1)
        run_fleet(fleet, jobs=1, checkpoint_dir=str(tmp_path),
                  stop_after_events=150)
        resumed = run_fleet(fleet, jobs=1,
                            checkpoint_dir=str(tmp_path),
                            resume=True)
        assert resumed.report.fingerprint() \
            == oracle.report.fingerprint()

    def test_legacy_snapshot_without_hash_accepted(self, tmp_path):
        """Snapshots predating the fleet-hash header (or written via
        DeviceRun.save directly) still resume."""
        from tests.test_fleet_snapshot import spec_for

        spec = spec_for()
        run = DeviceRun.build(spec)
        run.advance(300)
        path = tmp_path / "dev.snap"
        run.save(path)  # no fleet hash in the header
        resumed = DeviceRun.load(path, expect_config=spec.config,
                                 expect_fleet_hash="deadbeef")
        assert resumed.sim.processed == run.sim.processed
