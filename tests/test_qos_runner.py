"""Tests for measured QoS runs, the isolation experiment and perfbench."""

import json
import math

import pytest

from repro.experiments.qos_isolation import build_noisy_neighbor
from repro.experiments.registry import EXPERIMENT_REGISTRY, load_all
from repro.experiments.runner import ExperimentConfig
from repro.qos.host import TenantSpec
from repro.qos.runner import (
    QosRunResult,
    run_qos_workload,
    tenant_table_rows,
)
from repro.sim.host import StreamOp
from repro.sim.queues import RequestKind


def small_config(geometry):
    return ExperimentConfig(geometry=geometry, buffer_pages=16)


def tiny_tenants(span):
    mixed = [StreamOp(RequestKind.WRITE, i % span, 1) for i in range(8)]
    mixed += [StreamOp(RequestKind.READ, i % span, 1) for i in range(4)]
    noisy = [StreamOp(RequestKind.WRITE, (3 * i) % span, 2)
             for i in range(12)]
    return [
        TenantSpec.make("victim", [mixed], weight=4.0,
                        write_slo=1e-9),  # any queueing delay violates
        TenantSpec.make("noisy", [noisy]),
    ]


class TestRunQosWorkload:
    @pytest.mark.parametrize("ftl_name", ["flexFTL", "pageFTL"])
    def test_measured_run_reports_per_tenant(self, small_geometry,
                                             ftl_name):
        config = small_config(small_geometry)
        result = run_qos_workload(
            ftl_name=ftl_name, tenants=tiny_tenants(32),
            arbiter="drr", config=config, max_outstanding=2)
        assert result.ftl_name == ftl_name
        assert result.arbiter == "drr"
        victim = result.tenant("victim")
        assert victim["completed_writes"] == 8
        assert victim["completed_reads"] == 4
        # Writes admitted straight into the buffer complete with zero
        # latency; only delayed ones can violate the 1 ns target.
        assert 1 <= victim["write_violations"] <= 8
        assert victim["queue"]["issued"] == 12
        assert victim["weight"] == 4.0
        assert result.totals["completed_requests"] == 24
        assert result.totals["issued"] == 24
        assert result.totals["elapsed"] > 0.0

    def test_warmup_excluded_from_measured_counters(self,
                                                    small_geometry):
        config = small_config(small_geometry)
        result = run_qos_workload(
            ftl_name="pageFTL", tenants=tiny_tenants(32),
            config=config)
        # Measured host programs stay in the order of the workload's
        # own pages; the preconditioning fill is far larger.
        assert 0 < result.totals["counters"]["host_programs"] < 200

    def test_write_p99_shorthand(self, small_geometry):
        config = small_config(small_geometry)
        result = run_qos_workload(
            ftl_name="pageFTL", tenants=tiny_tenants(32),
            config=config)
        p99 = result.write_p99("victim")
        assert p99 == float(
            result.tenant("victim")["write_latency"]["p99"])
        assert p99 > 0.0

    def test_round_trip_through_json(self, small_geometry):
        config = small_config(small_geometry)
        result = run_qos_workload(
            ftl_name="pageFTL", tenants=tiny_tenants(32),
            config=config)
        wire = json.loads(json.dumps(result.to_dict()))
        restored = QosRunResult.from_dict(wire)
        assert restored.write_p99("victim") == result.write_p99("victim")
        assert restored.tenant("victim") == result.tenant("victim")
        # The noisy tenant issues no reads: NaN percentiles survive
        # the round-trip (and are why dict equality cannot be used).
        assert math.isnan(
            restored.tenant("noisy")["read_latency"]["p99"])
        assert restored.totals["events"] == result.totals["events"]

    def test_table_rows_cover_all_tenants(self, small_geometry):
        config = small_config(small_geometry)
        result = run_qos_workload(
            ftl_name="pageFTL", tenants=tiny_tenants(32),
            config=config)
        rows = tenant_table_rows(result)
        assert [row[0] for row in rows] == ["victim", "noisy"]


class TestNoisyNeighborScenario:
    def test_build_is_deterministic(self):
        first = build_noisy_neighbor(256, 400, seed=7)
        second = build_noisy_neighbor(256, 400, seed=7)
        assert first == second
        assert [spec.name for spec in first] == ["victim", "noisy"]
        assert first[0].weight > first[1].weight

    def test_op_budget_split(self):
        tenants = build_noisy_neighbor(256, 400, seed=1)
        victim, noisy = tenants
        assert victim.total_ops >= 400 // 4 - 2
        assert noisy.total_ops > victim.total_ops

    def test_rejects_empty_budget(self):
        with pytest.raises(ValueError):
            build_noisy_neighbor(256, 0, seed=1)


class TestCliIntegration:
    def test_qos_isolation_registered(self):
        load_all()
        experiment = EXPERIMENT_REGISTRY["qos_isolation"]
        assert experiment.parallel

    def test_perfbench_accepts_qos_mix(self):
        from repro.perfbench.harness import QOS_WORKLOADS, run_perfbench

        assert "qos_mix" in QOS_WORKLOADS
        with pytest.raises(KeyError):
            run_perfbench(workloads=["qos_blend"], scale=0.01)

    def test_perfbench_qos_mix_runs(self):
        from repro.perfbench.harness import run_perfbench

        result = run_perfbench(workloads=["qos_mix"], scale=0.03)
        timing = result.timings["qos_mix"]
        assert timing.events > 0
        assert timing.events_per_sec > 0
        assert not math.isnan(timing.host_ops_per_sec)
