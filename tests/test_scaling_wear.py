"""Tests for the scaling study and wear-aware allocation."""

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.experiments.scaling import run_scaling_study
from repro.ftl.base import FtlConfig
from repro.ftl.pageftl import PageFtl
from repro.metrics.lifetime import wear_spread
from repro.nand.geometry import NandGeometry
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.queues import RequestKind

from tests.helpers import build_small_system


class TestScalingStudy:
    def test_iops_grow_with_chips(self):
        config = ExperimentConfig(
            geometry=NandGeometry(channels=1, chips_per_channel=2,
                                  blocks_per_chip=24,
                                  pages_per_block=16, page_size=2048),
            buffer_pages=64,
        )
        result = run_scaling_study(channel_counts=(1, 2),
                                   ops_per_chip=300,
                                   base_config=config)
        iops = result.iops_by_chips()
        chips = sorted(iops)
        assert iops[chips[1]] > iops[chips[0]]

    def test_render(self):
        config = ExperimentConfig(
            geometry=NandGeometry(channels=1, chips_per_channel=1,
                                  blocks_per_chip=16,
                                  pages_per_block=16, page_size=2048),
            buffer_pages=32,
        )
        result = run_scaling_study(channel_counts=(1,),
                                   ops_per_chip=200,
                                   base_config=config)
        assert "efficiency" in result.render()


class TestWearAwareAllocation:
    def run_hot_workload(self, wear_aware, small_geometry):
        config = FtlConfig(wear_aware_allocation=wear_aware)
        system = build_small_system(PageFtl, small_geometry,
                                    buffer_pages=32,
                                    ftl_config=config)
        sim, array, buffer, ftl, controller = system
        span = ftl.logical_pages // 2
        # hammer a tiny hot set so GC churns specific blocks
        ops = [StreamOp(RequestKind.WRITE, i % span, 1)
               for i in range(span)]
        ops += [StreamOp(RequestKind.WRITE, i % 16, 1)
                for i in range(6 * span)]
        host = ClosedLoopHost(sim, controller, [ops])
        host.start()
        sim.run()
        return array

    def test_wear_aware_reduces_spread(self, small_geometry):
        fifo = wear_spread(self.run_hot_workload(False, small_geometry))
        aware = wear_spread(self.run_hot_workload(True, small_geometry))
        assert aware["stdev"] <= fifo["stdev"] + 0.25
        assert aware["max"] <= fifo["max"] + 1

    def test_wear_aware_still_completes(self, small_geometry):
        array = self.run_hot_workload(True, small_geometry)
        assert array.total_erases > 0
