"""Tests for repro.ftl.mapping, including a property-based invariant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ftl.mapping import MappingTable
from repro.nand.geometry import NandGeometry

GEOMETRY = NandGeometry(channels=1, chips_per_channel=2,
                        blocks_per_chip=4, pages_per_block=8,
                        page_size=256)


@pytest.fixture
def table():
    return MappingTable(GEOMETRY, logical_pages=32)


class TestBasicMapping:
    def test_unmapped_lookup(self, table):
        assert table.lookup(0) is None
        assert table.lookup_address(0) is None

    def test_map_and_lookup(self, table):
        table.map_write(3, 17)
        assert table.lookup(3) == 17
        assert table.lpn_of(17) == 3
        assert table.is_valid(17)

    def test_lookup_address_decodes(self, table):
        table.map_write(0, 9)
        addr = table.lookup_address(0)
        assert GEOMETRY.ppn(addr) == 9

    def test_remap_invalidates_old(self, table):
        table.map_write(3, 17)
        old = table.map_write(3, 42)
        assert old == 17
        assert not table.is_valid(17)
        assert table.lookup(3) == 42

    def test_double_map_same_ppn_rejected(self, table):
        table.map_write(1, 5)
        with pytest.raises(ValueError):
            table.map_write(2, 5)

    def test_unmap(self, table):
        table.map_write(1, 5)
        assert table.unmap(1) == 5
        assert table.lookup(1) is None
        assert table.unmap(1) is None

    def test_lpn_bounds_checked(self, table):
        with pytest.raises(IndexError):
            table.lookup(32)
        with pytest.raises(IndexError):
            table.map_write(-1, 0)


class TestValidityAccounting:
    def test_valid_counts_per_block(self, table):
        ppb = GEOMETRY.pages_per_block
        table.map_write(0, 0)
        table.map_write(1, 1)
        table.map_write(2, ppb)  # second block
        assert table.valid_count(0) == 2
        assert table.valid_count(1) == 1
        assert table.invalid_count(0) == ppb - 2

    def test_valid_lpns_in_block(self, table):
        table.map_write(5, 2)
        table.map_write(6, 4)
        assert sorted(table.valid_lpns_in_block(0)) == [5, 6]

    def test_erase_check_rejects_blocks_with_valid_data(self, table):
        table.map_write(0, 0)
        with pytest.raises(ValueError):
            table.note_block_erased(0)

    def test_erase_check_passes_clean_block(self, table):
        table.map_write(0, 0)
        table.map_write(0, GEOMETRY.pages_per_block)  # moved away
        table.note_block_erased(0)

    def test_global_block_helpers(self, table):
        ppb = GEOMETRY.pages_per_block
        assert table.global_block(0) == 0
        assert table.global_block(ppb) == 1
        assert table.global_block_of(1, 2) == 1 * 4 + 2

    def test_oversized_logical_space_rejected(self):
        with pytest.raises(ValueError):
            MappingTable(GEOMETRY, GEOMETRY.total_pages + 1)
        with pytest.raises(ValueError):
            MappingTable(GEOMETRY, 0)


class TestMappingInvariants:
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=31),
                  st.integers(min_value=0, max_value=63)),
        max_size=80,
    ))
    @settings(max_examples=60, deadline=None)
    def test_l2p_p2l_stay_consistent(self, operations):
        """L2P and P2L are mutual inverses under any write sequence."""
        table = MappingTable(GEOMETRY, logical_pages=32)
        used_ppns = set()
        for lpn, ppn in operations:
            if ppn in used_ppns:
                continue  # a real FTL never reuses a live page
            table.map_write(lpn, ppn)
            used_ppns.add(ppn)
            old = None
        # Invariants:
        mapped = 0
        for lpn in range(32):
            ppn = table.lookup(lpn)
            if ppn is not None:
                assert table.lpn_of(ppn) == lpn
                mapped += 1
        assert mapped == table.mapped_pages
        total_valid = sum(table.valid_count(gb)
                          for gb in range(GEOMETRY.total_blocks))
        assert total_valid == mapped
