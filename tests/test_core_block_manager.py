"""Tests for repro.core.block_manager: 2PO block life cycle."""

import pytest

from repro.core.block_manager import TwoPhaseBlockManager
from repro.nand.page_types import PageType


class TestFastPhase:
    def test_fresh_manager_needs_fast_block(self):
        manager = TwoPhaseBlockManager(wordlines=4)
        assert manager.needs_fast_block
        assert manager.take_lsb() is None
        assert manager.free_lsb_pages == 0

    def test_install_and_take(self):
        manager = TwoPhaseBlockManager(wordlines=4)
        manager.install_fast_block(7)
        assert manager.active_fast_block == 7
        taken = manager.take_lsb()
        assert taken.block == 7
        assert taken.wordline == 0
        assert taken.ptype is PageType.LSB
        assert not taken.phase_done

    def test_double_install_rejected(self):
        manager = TwoPhaseBlockManager(wordlines=4)
        manager.install_fast_block(1)
        with pytest.raises(RuntimeError):
            manager.install_fast_block(2)

    def test_last_lsb_moves_block_to_sbqueue(self):
        manager = TwoPhaseBlockManager(wordlines=2)
        manager.install_fast_block(3)
        manager.take_lsb()
        taken = manager.take_lsb()
        assert taken.phase_done
        assert manager.needs_fast_block
        assert manager.sbqueue_length == 1
        assert manager.active_slow_block == 3


class TestSlowPhase:
    def make_slow(self, manager, block):
        manager.install_fast_block(block)
        while True:
            taken = manager.take_lsb()
            if taken.phase_done:
                return

    def test_take_msb_from_queue_head(self):
        manager = TwoPhaseBlockManager(wordlines=2)
        self.make_slow(manager, 3)
        self.make_slow(manager, 5)
        taken = manager.take_msb()
        assert taken.block == 3  # FIFO: oldest fast block first
        assert taken.ptype is PageType.MSB

    def test_full_block_leaves_queue(self):
        manager = TwoPhaseBlockManager(wordlines=2)
        self.make_slow(manager, 3)
        manager.take_msb()
        taken = manager.take_msb()
        assert taken.phase_done
        assert manager.sbqueue_length == 0
        assert manager.take_msb() is None

    def test_queue_is_fifo_across_blocks(self):
        manager = TwoPhaseBlockManager(wordlines=1)
        for block in (9, 4, 6):
            self.make_slow(manager, block)
        order = []
        while True:
            taken = manager.take_msb()
            if taken is None:
                break
            order.append(taken.block)
        assert order == [9, 4, 6]


class TestCapacityViews:
    def test_free_page_counts(self):
        manager = TwoPhaseBlockManager(wordlines=4)
        manager.install_fast_block(0)
        assert manager.free_lsb_pages == 4
        manager.take_lsb()
        assert manager.free_lsb_pages == 3
        assert manager.free_msb_pages == 0
        for _ in range(3):
            manager.take_lsb()
        assert manager.free_lsb_pages == 0
        assert manager.free_msb_pages == 4
        manager.take_msb()
        assert manager.free_msb_pages == 3

    def test_has_slow_block(self):
        manager = TwoPhaseBlockManager(wordlines=1)
        assert not manager.has_slow_block
        manager.install_fast_block(0)
        manager.take_lsb()
        assert manager.has_slow_block

    def test_invalid_wordlines(self):
        with pytest.raises(ValueError):
            TwoPhaseBlockManager(wordlines=0)
