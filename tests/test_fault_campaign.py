"""Tests for the fault campaign: determinism, engine equivalence, and
the flexFTL-vs-pageFTL loss headline."""

import dataclasses

import pytest

from repro.experiments.engine import (
    Cell,
    EngineOptions,
    ResultCache,
    derive_seed,
    run_cells,
)
from repro.experiments.fault_campaign import (
    build_campaign_streams,
    campaign_config,
    render_fault_campaign,
    run_fault_campaign,
)
from repro.experiments.runner import ExperimentConfig, experiment_span
from repro.faults.plan import FaultPlan
from repro.faults.runner import run_fault_workload
from repro.nand.geometry import NandGeometry

TEST_CONFIG = campaign_config(ExperimentConfig(
    geometry=NandGeometry(channels=2, chips_per_channel=2,
                          blocks_per_chip=24, pages_per_block=16,
                          page_size=512),
    buffer_pages=32,
))
TEST_OPS = 600
TEST_RATE = 0.01


def _streams(seed=1):
    span = experiment_span(TEST_CONFIG, utilization=0.6,
                          ftls=("pageFTL", "flexFTL"))
    return build_campaign_streams(span, TEST_OPS, seed)


def _plan(seed=1):
    return FaultPlan(seed=derive_seed(seed, "rate", TEST_RATE),
                     program_fail_rate=TEST_RATE)


class TestDeterminism:
    def test_same_seed_identical_stats(self):
        results = [
            run_fault_workload(ftl_name="flexFTL", streams=_streams(),
                               plan=_plan(), config=TEST_CONFIG)
            for _ in range(2)
        ]
        assert results[0].to_dict() == results[1].to_dict()
        faults = results[0].stats.faults
        assert faults is not None and faults.program_failures > 0

    def test_different_seed_different_faults(self):
        base = run_fault_workload(ftl_name="flexFTL",
                                  streams=_streams(), plan=_plan(1),
                                  config=TEST_CONFIG)
        other = run_fault_workload(ftl_name="flexFTL",
                                   streams=_streams(), plan=_plan(2),
                                   config=TEST_CONFIG)
        assert base.to_dict() != other.to_dict()

    def test_zero_rate_attaches_zeroed_fault_stats(self):
        result = run_fault_workload(ftl_name="pageFTL",
                                    streams=_streams(),
                                    plan=FaultPlan(),
                                    config=TEST_CONFIG)
        faults = result.stats.faults
        assert faults is not None
        assert faults.program_failures == 0
        assert faults.lost_pages == 0


class TestEngineEquivalence:
    def _cells(self):
        streams = _streams()
        return [
            Cell.make("fault_workload", label=f"{ftl}@{TEST_RATE:g}",
                      ftl_name=ftl, streams=streams, plan=_plan(),
                      config=TEST_CONFIG)
            for ftl in ("pageFTL", "flexFTL")
        ]

    def test_serial_equals_parallel(self):
        serial = run_cells(self._cells(),
                           options=EngineOptions(jobs=1))
        parallel = run_cells(self._cells(),
                             options=EngineOptions(jobs=2))
        assert [r.to_dict() for r in serial] \
            == [r.to_dict() for r in parallel]

    def test_cached_equals_fresh(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cold = run_cells(self._cells(),
                         options=EngineOptions(cache=cache))
        warm = run_cells(self._cells(),
                         options=EngineOptions(cache=cache))
        assert cache.hits == len(self._cells())
        assert [r.to_dict() for r in cold] \
            == [r.to_dict() for r in warm]


class TestCampaignHeadline:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_fault_campaign(
            rates=(TEST_RATE,), total_ops=TEST_OPS, seed=1, cuts=1,
            config=TEST_CONFIG)

    def test_flexftl_recovers_where_pageftl_loses(self, campaign):
        flex = campaign.grid[("flexFTL", TEST_RATE)].stats.faults
        page = campaign.grid[("pageFTL", TEST_RATE)].stats.faults
        assert flex.program_failures >= 1
        assert flex.lost_pages == 0
        assert page.lost_pages > 0

    def test_resume_epilogue_ran_and_lost_nothing_durable(
            self, campaign):
        assert campaign.resume_ftl == "flexFTL"
        assert campaign.resume_recoveries
        faults = campaign.resume_result.stats.faults
        assert faults.power_cuts == len(campaign.resume_recoveries)
        for recovery in campaign.resume_recoveries:
            assert recovery["lost_pages"] == 0

    def test_render_mentions_the_headline(self, campaign):
        report = render_fault_campaign(campaign)
        assert "recovered all" in report
        assert "power-loss resume" in report

    def test_campaign_serialization_round_trips(self, campaign):
        data = campaign.to_dict()
        assert f"flexFTL@{TEST_RATE}" in data["grid"]
        assert "resume" in data
