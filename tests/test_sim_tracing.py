"""Tests for OpLog tracing, and scheduling assertions built on it."""

import pytest

from repro.core.flexftl import FlexFtl
from repro.ftl.parityftl import ParityFtl
from repro.ftl.pageftl import PageFtl
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.ops import OpKind
from repro.sim.queues import Request, RequestKind
from repro.sim.tracing import OpLog

from tests.helpers import build_small_system


def run_stream(system, ops):
    sim, array, buffer, ftl, controller = system
    host = ClosedLoopHost(sim, controller, [ops])
    host.start()
    sim.run()


class TestOpLogBasics:
    def test_records_every_operation(self, small_geometry):
        system = build_small_system(PageFtl, small_geometry)
        _, array, _, _, controller = system
        log = OpLog.attach(controller)
        run_stream(system, [StreamOp(RequestKind.WRITE, i, 1)
                            for i in range(20)])
        assert len(log.filter(kind=OpKind.PROGRAM)) == 20
        assert len(log) == array.total_programs + array.total_reads \
            + array.total_erases

    def test_tags_separate_host_and_backup(self, small_geometry):
        system = build_small_system(ParityFtl, small_geometry)
        _, _, _, ftl, controller = system
        log = OpLog.attach(controller)
        run_stream(system, [StreamOp(RequestKind.WRITE, i, 1)
                            for i in range(40)])
        counts = log.counts_by_tag()
        assert counts["host"] == 40
        assert counts.get("backup", 0) == ftl.backup_programs

    def test_capacity_ring(self, small_geometry):
        system = build_small_system(PageFtl, small_geometry)
        controller = system[4]
        log = OpLog.attach(controller, capacity=5)
        run_stream(system, [StreamOp(RequestKind.WRITE, i, 1)
                            for i in range(20)])
        assert len(log) == 5
        assert log.dropped == 15

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            OpLog(capacity=0)

    def test_times_are_monotonic_per_chip(self, small_geometry):
        system = build_small_system(PageFtl, small_geometry)
        controller = system[4]
        log = OpLog.attach(controller)
        run_stream(system, [StreamOp(RequestKind.WRITE, i % 50, 1)
                            for i in range(120)])
        for chip_id in range(small_geometry.total_chips):
            times = [r.time for r in log.filter(chip_id=chip_id)]
            assert times == sorted(times)


class TestSchedulingProperties:
    def test_reads_jump_the_write_queue(self, small_geometry):
        """A read submitted while writes are buffered is dispatched at
        the chip's next idle slot, before remaining buffered writes."""
        system = build_small_system(PageFtl, small_geometry,
                                    buffer_pages=64)
        sim, array, buffer, ftl, controller = system
        log = OpLog.attach(controller)
        # seed data, flushed to flash
        controller.submit(Request(0.0, RequestKind.WRITE, 0, 1))
        sim.run()
        # long buffered write backlog + a read of the seeded page
        controller.submit(Request(sim.now, RequestKind.WRITE, 100, 40))
        read = Request(sim.now, RequestKind.READ, 0, 1)
        controller.submit(read)
        sim.run()
        reads = log.filter(kind=OpKind.READ, tag="host")
        assert len(reads) == 1
        read_record = reads[0]
        later_programs = [
            r for r in log.filter(kind=OpKind.PROGRAM,
                                  chip_id=read_record.chip_id)
            if r.time > read_record.time
        ]
        # The backlog was still draining after the read was served.
        assert later_programs

    def test_flexftl_gc_copies_use_msb_pages(self, small_geometry):
        from repro.ftl.base import FtlConfig

        # On a 16-block chip the default 10% threshold degenerates to
        # one block, below which the free pool never drops (the GC
        # reserve holds two); raise it so idle-time collection arms.
        system = build_small_system(
            FlexFtl, small_geometry, buffer_pages=32,
            ftl_config=FtlConfig(gc_threshold_fraction=0.3))
        _, _, _, ftl, controller = system
        log = OpLog.attach(controller)
        # Fill a wide span once (cold data), then hammer a hot subset
        # *with idle gaps*: victims hold cold valid pages, and the
        # idle time lets the background collector do the relocating —
        # which is the path Section 3.2 sends through MSB pages.
        span = (ftl.logical_pages * 3) // 4
        ops = [StreamOp(RequestKind.WRITE, lpn, 1)
               for lpn in range(span)]
        ops += [StreamOp(RequestKind.WRITE, (i * 13) % (span // 4), 1,
                         think_after=0.004)
                for i in range(3 * span)]
        run_stream(system, ops)
        assert ftl.background_gcs > 0
        gc_programs = log.filter(kind=OpKind.PROGRAM, tag="gc")
        assert gc_programs
        msb = sum(1 for r in gc_programs if r.page % 2 == 1)
        # Idle-time relocations go to slow (MSB) pages whenever a slow
        # block exists (Section 3.2); the LSB share is the documented
        # fallback for SBQueue-starved moments on this tiny device.
        assert msb / len(gc_programs) > 0.25
        # The preference itself, checked directly: with a slow block
        # available a relocation target is always an MSB page.
        chip0 = 0
        manager = ftl.managers[chip0]
        if not manager.has_slow_block:
            if manager.needs_fast_block:
                block = ftl._take_free_block(chip0, for_gc=True)
                manager.install_fast_block(block)
            while not manager.has_slow_block:
                manager.take_lsb()
        from repro.nand.page_types import PageType
        _, ptype = ftl._allocate_gc_page(chip0)
        assert ptype is PageType.MSB

    def test_gc_reads_precede_their_programs(self, small_geometry):
        system = build_small_system(PageFtl, small_geometry,
                                    buffer_pages=32)
        _, _, _, ftl, controller = system
        log = OpLog.attach(controller)
        span = ftl.logical_pages // 2
        run_stream(system, [StreamOp(RequestKind.WRITE, (i * 3) % span, 1)
                            for i in range(4 * span)])
        for chip_id in range(small_geometry.total_chips):
            pending_read_lpns = []
            for record in log.filter(chip_id=chip_id, tag="gc"):
                if record.kind is OpKind.READ:
                    pending_read_lpns.append(record.lpn)
                elif record.kind is OpKind.PROGRAM:
                    assert record.lpn in pending_read_lpns
                    pending_read_lpns.remove(record.lpn)
