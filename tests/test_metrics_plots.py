"""Tests for ASCII plot rendering."""

import pytest

from repro.metrics.plots import (
    ascii_bars,
    ascii_box_plot,
    ascii_cdf,
    ascii_grouped_bars,
)
from repro.reliability.montecarlo import BoxStats


def box(minimum, p25, median, p75, maximum):
    return BoxStats(minimum, p25, median, p75, maximum,
                    mean=(minimum + maximum) / 2)


class TestBoxPlot:
    def test_renders_one_row_per_label(self):
        plot = ascii_box_plot({
            "a": box(0, 1, 2, 3, 4),
            "b": box(1, 2, 3, 4, 5),
        })
        lines = plot.splitlines()
        assert len(lines) == 3  # two rows + axis
        assert lines[0].lstrip().startswith("a")

    def test_markers_present(self):
        plot = ascii_box_plot({"x": box(0, 2, 5, 8, 10)})
        row = plot.splitlines()[0]
        for marker in "|[]*=":
            assert marker in row

    def test_degenerate_distribution(self):
        plot = ascii_box_plot({"flat": box(1, 1, 1, 1, 1)})
        assert "*" in plot

    def test_rejects_empty_and_narrow(self):
        with pytest.raises(ValueError):
            ascii_box_plot({})
        with pytest.raises(ValueError):
            ascii_box_plot({"a": box(0, 1, 2, 3, 4)}, width=5)


class TestBars:
    def test_bar_lengths_proportional(self):
        plot = ascii_bars({"half": 5.0, "full": 10.0}, width=20)
        lines = plot.splitlines()
        half = lines[0].count("#")
        full = lines[1].count("#")
        assert full == 20
        assert half == 10

    def test_values_printed(self):
        plot = ascii_bars({"x": 1.234})
        assert "1.23" in plot

    def test_grouped_blocks(self):
        plot = ascii_grouped_bars({
            "w1": {"a": 1.0, "b": 2.0},
            "w2": {"a": 3.0, "b": 1.0},
        })
        assert "w1" in plot and "w2" in plot

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_bars({})


class TestCdfPlot:
    def test_axes_and_legend(self):
        points = {
            "one": [(0.25, 10.0), (0.5, 20.0), (1.0, 40.0)],
            "two": [(0.25, 15.0), (0.5, 25.0), (1.0, 30.0)],
        }
        plot = ascii_cdf(points)
        assert plot.splitlines()[0].startswith("1.0 |")
        assert "0.0 +" in plot
        assert "a=one" in plot
        assert "b=two" in plot

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_cdf({})
