"""Property tests for the physics error model (satellite of PR 10).

Seeded-random sweeps over the closed-form BER evaluator
(:func:`repro.reliability.ber.expected_page_ber`) and its inputs,
asserting the physical orderings the runtime engine relies on:

* BER is monotone **non-decreasing** in P/E cycles and in retention
  age — *at zero aggressors*.  The restriction is physical, not a
  test convenience: aggressor coupling shifts cells right while
  retention loss shifts them left, so with both present the shifts
  partially cancel and the combined surface is legitimately
  non-monotone in either axis alone.  The monotone axes are swept
  from interference-free baselines; the aggressor axis is swept at
  zero retention for the mirrored reason.
* BER is monotone in read disturbs *everywhere*: disturb shifts only
  the erased state, and always toward the read reference, so no
  cancellation exists.
* ECC page-failure probability is monotone in raw BER.
* A full FPS fill never gives any word line *fewer* aggressors than
  a legal RPS fill of the same block (the paper's core claim, stated
  per word line, with :func:`random_rps_order` sampling the legal
  RPS space).
* Aggressor counts are monotone in program-order prefix length
  (programs only ever add interference).
* An unfinalised (LSB-only) word line never has a higher BER than
  the same word line finalised — the SLC-like margin RPS exploits.

Each property runs tens of seeded cases; together the module covers
~200 cases, all closed-form (no Monte-Carlo), so the suite stays
fast.  The differential checks against the Monte-Carlo oracle live in
``tests/test_reliability_runtime_diff.py``.
"""

import random

import pytest

from repro.core.rps import fps_order, random_rps_order
from repro.reliability.ber import (
    OperatingCondition,
    StressModel,
    expected_page_ber,
)
from repro.reliability.ecc import EccConfig, page_failure_probability
from repro.reliability.interference import aggressor_counts

WORDLINES = 32

#: Ascending stress grids the monotone sweeps draw from.
PE_GRID = (0, 250, 500, 1000, 2000, 3000, 4500, 6000, 8000)
RETENTION_GRID = (0.0, 1.0, 24.0, 250.0, 1000.0, 8760.0, 26280.0,
                  100000.0)
DISTURB_GRID = (0, 8, 64, 1000, 30000, 10 ** 6)
AGGRESSOR_GRID = (0, 1, 2, 3, 4)

PAGES = ("lsb", "msb", "both")

PE_SEEDS = range(30)
RETENTION_SEEDS = range(30, 60)
AGGRESSOR_SEEDS = range(60, 90)
DISTURB_SEEDS = range(90, 120)
ECC_SEEDS = range(120, 150)
ORDER_SEEDS = range(150, 190)


def _ascending_subgrid(rng, grid, k=4):
    """A random ascending sub-grid of ``grid`` with ``k`` points."""
    return sorted(rng.sample(list(grid), k))


def _assert_nondecreasing(values, context):
    for prev, cur in zip(values, values[1:]):
        assert cur >= prev - 1e-18, (
            f"BER not monotone ({context}): {values}")


@pytest.mark.parametrize("seed", PE_SEEDS)
def test_ber_monotone_in_pe_cycles_without_aggressors(seed):
    rng = random.Random(seed)
    retention = rng.choice(RETENTION_GRID)
    disturbs = rng.choice(DISTURB_GRID)
    page = rng.choice(PAGES)
    bers = [
        expected_page_ber(
            0, OperatingCondition(pe, retention, disturbs), page=page)
        for pe in _ascending_subgrid(rng, PE_GRID)
    ]
    _assert_nondecreasing(
        bers, f"pe sweep, ret={retention}, disturbs={disturbs}")


@pytest.mark.parametrize("seed", RETENTION_SEEDS)
def test_ber_monotone_in_retention_without_aggressors(seed):
    rng = random.Random(seed)
    pe = rng.choice(PE_GRID)
    disturbs = rng.choice(DISTURB_GRID)
    page = rng.choice(PAGES)
    bers = [
        expected_page_ber(
            0, OperatingCondition(pe, hours, disturbs), page=page)
        for hours in _ascending_subgrid(rng, RETENTION_GRID)
    ]
    _assert_nondecreasing(
        bers, f"retention sweep, pe={pe}, disturbs={disturbs}")


@pytest.mark.parametrize("seed", AGGRESSOR_SEEDS)
def test_ber_monotone_in_aggressors_without_retention(seed):
    rng = random.Random(seed)
    pe = rng.choice(PE_GRID)
    disturbs = rng.choice(DISTURB_GRID)
    page = rng.choice(PAGES)
    bers = [
        expected_page_ber(
            k, OperatingCondition(pe, 0.0, disturbs), page=page)
        for k in AGGRESSOR_GRID
    ]
    _assert_nondecreasing(
        bers, f"aggressor sweep, pe={pe}, disturbs={disturbs}")


@pytest.mark.parametrize("seed", DISTURB_SEEDS)
def test_ber_monotone_in_read_disturbs_anywhere(seed):
    # Disturb needs no interference-free baseline: it shifts only the
    # erased state and only toward the read reference, so it compounds
    # with (never cancels against) retention and aggressor shifts.
    rng = random.Random(seed)
    pe = rng.choice(PE_GRID)
    retention = rng.choice(RETENTION_GRID)
    aggressors = rng.choice(AGGRESSOR_GRID)
    page = rng.choice(PAGES)
    bers = [
        expected_page_ber(
            aggressors, OperatingCondition(pe, retention, disturbs),
            page=page)
        for disturbs in _ascending_subgrid(rng, DISTURB_GRID)
    ]
    _assert_nondecreasing(
        bers,
        f"disturb sweep, pe={pe}, ret={retention}, agg={aggressors}")


def test_retention_aggressor_cancellation_is_real():
    """Document why the monotone sweeps pin the opposing axis to zero.

    With aggressors present, adding retention *lowers* the BER over
    part of the surface (the left-shift walks the right-shifted cells
    back toward their nominal positions).  If this ever stops holding
    the model changed character and the sweep restrictions above
    should be revisited.
    """
    stressed = OperatingCondition(pe_cycles=3000, retention_hours=0.0)
    aged = OperatingCondition(pe_cycles=3000, retention_hours=8760.0)
    assert expected_page_ber(4, aged) < expected_page_ber(4, stressed)


@pytest.mark.parametrize("seed", ECC_SEEDS)
def test_ecc_failure_monotone_in_raw_ber(seed):
    rng = random.Random(seed)
    ecc = EccConfig(codeword_bytes=rng.choice((512, 1024, 2048)),
                    correctable_bits=rng.choice((8, 16, 40, 72)))
    page_size = rng.choice((2048, 4096, 8192))
    bers = sorted(rng.uniform(1e-8, 2e-2) for _ in range(6))
    pfails = [page_failure_probability(ber, page_size, ecc)
              for ber in bers]
    for prev, cur in zip(pfails, pfails[1:]):
        assert cur >= prev - 1e-15
    assert all(0.0 <= p <= 1.0 for p in pfails)


@pytest.mark.parametrize("seed", ORDER_SEEDS)
def test_fps_aggressors_dominate_rps_per_wordline(seed):
    fps = aggressor_counts(fps_order(WORDLINES), WORDLINES)
    rps = aggressor_counts(
        random_rps_order(WORDLINES, random.Random(seed)), WORDLINES)
    assert len(fps) == len(rps) == WORDLINES
    for wordline, (fps_count, rps_count) in enumerate(zip(fps, rps)):
        assert fps_count >= rps_count, (
            f"wordline {wordline}: FPS {fps_count} < RPS {rps_count}")


@pytest.mark.parametrize("seed", ORDER_SEEDS)
def test_aggressor_counts_monotone_in_prefix(seed):
    order = random_rps_order(WORDLINES, random.Random(seed))
    previous = [0] * WORDLINES
    for length in range(1, len(order) + 1):
        counts = aggressor_counts(order[:length], WORDLINES)
        for wordline in range(WORDLINES):
            assert counts[wordline] >= previous[wordline]
        previous = counts


@pytest.mark.parametrize("pe", (0, 3000, 8000))
@pytest.mark.parametrize("retention", (0.0, 8760.0))
@pytest.mark.parametrize("disturbs", (0, 10 ** 5))
def test_unfinalized_wordline_never_worse_than_finalized(
        pe, retention, disturbs):
    condition = OperatingCondition(pe, retention, disturbs)
    unfinalized = expected_page_ber(0, condition, page="lsb",
                                    finalized=False)
    finalized = expected_page_ber(0, condition, page="lsb",
                                  finalized=True)
    assert unfinalized <= finalized


def test_stress_model_shift_signs():
    """The shift conventions the retry ladder's defaults rely on."""
    stress = StressModel()
    aged = OperatingCondition(pe_cycles=3000, retention_hours=8760.0,
                              read_disturbs=10 ** 4)
    assert stress.retention_shift(aged) < 0.0
    assert stress.disturb_shift(aged) > 0.0
    assert stress.retention_shift(
        OperatingCondition(retention_hours=0.0)) == 0.0
    assert stress.disturb_shift(
        OperatingCondition(read_disturbs=0)) == 0.0
