"""Differential FTL invariants over seeded random workloads.

Complements ``test_ftl_consistency_property`` (which checks the
mapping against a last-write-wins oracle): here the checks are
*internal* conservation laws that must hold for every FTL after any
workload, compared across three independent bookkeepers — the FTL's
counters, the mapping, and the NAND array's own accounting:

* the logical-to-physical mapping is a bijection over live pages;
* per-block valid counts equal a recount from the forward map;
* free/full block sets are disjoint, in-range, and a block holding
  valid data is never considered free;
* erases balance: per-block erase counts, per-chip counters and the
  FTL report agree;
* programs balance: the array's page-program count equals the FTL's
  host + GC + backup attribution, split into LSB/MSB exactly.

240 seeded cases (4 FTLs x 60 seeds), each a full closed-loop
simulation with the program-sequence checker armed.
"""

import random

import pytest

from repro.core.flexftl import FlexFtl
from repro.ftl.pageftl import PageFtl
from repro.ftl.parityftl import ParityFtl
from repro.ftl.rtfftl import RtfFtl
from repro.nand.geometry import NandGeometry
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.queues import RequestKind

from tests.helpers import build_small_system

GEOMETRY = NandGeometry(channels=2, chips_per_channel=2,
                        blocks_per_chip=12, pages_per_block=8,
                        page_size=512)
SPAN = 180


def random_stream(seed, length=120):
    rng = random.Random(seed)
    ops = []
    for _ in range(length):
        lpn = rng.randrange(SPAN - 4)
        npages = rng.randint(1, 4)
        kind = RequestKind.WRITE if rng.random() < 0.7 \
            else RequestKind.READ
        ops.append(StreamOp(kind, lpn, npages))
    return ops


@pytest.mark.parametrize("ftl_cls", [PageFtl, ParityFtl, RtfFtl,
                                     FlexFtl])
@pytest.mark.parametrize("seed", range(60))
def test_conservation_invariants(ftl_cls, seed):
    sim, array, buffer, ftl, controller = build_small_system(
        ftl_cls, GEOMETRY, buffer_pages=16)
    host = ClosedLoopHost(sim, controller,
                          [random_stream(seed)])
    host.start()
    sim.run()
    assert host.remaining == 0 and buffer.is_empty

    # --- mapping bijectivity over live pages ---------------------------
    live = {}
    for lpn in range(SPAN):
        ppn = ftl.lookup(lpn)
        if ppn is not None:
            assert ppn not in live.values(), "ppn shared by two lpns"
            assert ftl.mapping.lpn_of(ppn) == lpn
            live[lpn] = ppn

    # --- per-block valid counts recount from the forward map ----------
    per_block = {}
    pages_per_block = GEOMETRY.pages_per_block
    for ppn in live.values():
        per_block[ppn // pages_per_block] = \
            per_block.get(ppn // pages_per_block, 0) + 1
    for gb in range(GEOMETRY.total_blocks):
        assert ftl.mapping.valid_count(gb) == per_block.get(gb, 0), \
            f"valid_count drifted for block {gb}"

    # --- free/full sets: disjoint, in-range, free means no live data --
    num_chips = GEOMETRY.channels * GEOMETRY.chips_per_channel
    for chip_id in range(num_chips):
        state = ftl.chips[chip_id]
        free = set(state.free_blocks)
        assert len(free) == len(state.free_blocks), "duplicate free block"
        assert not (free & state.full_blocks), "block both free and full"
        for block in free | state.full_blocks:
            assert 0 <= block < ftl.data_blocks_per_chip
        for block in free:
            gb = ftl.mapping.global_block_of(chip_id, block)
            assert ftl.mapping.valid_count(gb) == 0, \
                f"free block {block} on chip {chip_id} holds live data"

    # --- erase balance ------------------------------------------------
    block_erases = sum(
        blk.erase_count for chip in array.chips for blk in chip.blocks)
    chip_erases = sum(chip.erases for chip in array.chips)
    assert block_erases == chip_erases == array.total_erases \
        == ftl.counters()["erases"]

    # --- program balance ----------------------------------------------
    counters = ftl.counters()
    attributed = (counters["host_programs"] + counters["gc_programs"]
                  + counters["backup_programs"])
    assert array.total_programs == attributed
    assert array.total_programs == \
        counters["lsb_programs"] + counters["msb_programs"]
    assert counters["host_programs"] >= len(live)
