"""Tests for repro.sim.queues and repro.sim.stats."""

import pytest

from repro.sim.queues import Request, RequestKind, WriteBuffer
from repro.sim.stats import SimStats, WindowedBandwidth


class TestRequest:
    def test_pages_remaining_initialised(self):
        request = Request(0.0, RequestKind.WRITE, 10, 4)
        assert request.pages_remaining == 4

    def test_latency_before_completion_is_none(self):
        request = Request(1.0, RequestKind.READ, 0)
        assert request.latency is None
        request.completed_at = 1.5
        assert request.latency == pytest.approx(0.5)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            Request(0.0, RequestKind.WRITE, 0, 0)
        with pytest.raises(ValueError):
            Request(0.0, RequestKind.WRITE, -1, 1)


class TestWriteBuffer:
    def test_fifo_order(self):
        buffer = WriteBuffer(4)
        buffer.push(1, 0.0)
        buffer.push(2, 0.1)
        assert buffer.pop().lpn == 1
        assert buffer.pop().lpn == 2

    def test_capacity_enforced(self):
        buffer = WriteBuffer(2)
        buffer.push(1, 0.0)
        buffer.push(2, 0.0)
        assert buffer.is_full
        with pytest.raises(OverflowError):
            buffer.push(3, 0.0)

    def test_utilization(self):
        buffer = WriteBuffer(4)
        assert buffer.utilization == 0.0
        buffer.push(1, 0.0)
        assert buffer.utilization == pytest.approx(0.25)
        buffer.push(2, 0.0)
        assert buffer.utilization == pytest.approx(0.5)

    def test_residency_tracking_with_duplicates(self):
        buffer = WriteBuffer(4)
        buffer.push(7, 0.0)
        buffer.push(7, 0.1)
        assert buffer.contains(7)
        buffer.pop()
        assert buffer.contains(7)  # second copy still resident
        buffer.pop()
        assert not buffer.contains(7)

    def test_pop_empty_raises(self):
        buffer = WriteBuffer(2)
        with pytest.raises(IndexError):
            buffer.pop()
        with pytest.raises(IndexError):
            buffer.peek()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            WriteBuffer(0)


class TestWindowedBandwidth:
    def test_single_window_bandwidth(self):
        tracker = WindowedBandwidth(window=0.1)
        tracker.record(0.00, 4096)
        tracker.record(0.05, 4096)
        samples = tracker.samples_mbps()
        assert len(samples) == 1
        assert samples[0] == pytest.approx(2 * 4096 / 0.1 / 1e6)

    def test_idle_windows_are_skipped(self):
        tracker = WindowedBandwidth(window=0.1)
        tracker.record(0.0, 4096)
        tracker.record(10.0, 4096)
        assert len(tracker.samples_mbps()) == 2

    def test_cdf_is_monotonic(self):
        tracker = WindowedBandwidth(window=0.1)
        for i in range(10):
            tracker.record(i * 0.1, (i + 1) * 4096)
        values, fractions = tracker.cdf()
        assert values == sorted(values)
        assert fractions[-1] == pytest.approx(1.0)

    def test_percentile(self):
        tracker = WindowedBandwidth(window=1.0)
        for i in range(100):
            tracker.record(float(i), (i + 1) * 1_000_000)
        assert tracker.percentile(0.0) == pytest.approx(1.0)
        assert tracker.percentile(1.0) == pytest.approx(100.0)
        assert tracker.percentile(0.5) > tracker.percentile(0.25)

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            WindowedBandwidth().percentile(0.5)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedBandwidth(window=0.0)


class TestSimStats:
    def test_iops_counts_requests_over_makespan(self):
        stats = SimStats()
        first = Request(0.0, RequestKind.WRITE, 0)
        second = Request(0.5, RequestKind.READ, 1)
        stats.note_arrival(first)
        stats.note_arrival(second)
        stats.note_request_complete(first, 0.5)
        stats.note_request_complete(second, 2.0)
        assert stats.completed_requests == 2
        assert stats.elapsed == pytest.approx(2.0)
        assert stats.iops() == pytest.approx(1.0)

    def test_latencies_split_by_kind(self):
        stats = SimStats()
        write = Request(0.0, RequestKind.WRITE, 0)
        read = Request(0.0, RequestKind.READ, 0)
        stats.note_arrival(write)
        stats.note_arrival(read)
        stats.note_request_complete(write, 0.25)
        stats.note_request_complete(read, 0.5)
        assert stats.mean_latency(RequestKind.WRITE) == pytest.approx(0.25)
        assert stats.mean_latency(RequestKind.READ) == pytest.approx(0.5)

    def test_empty_stats(self):
        stats = SimStats()
        assert stats.iops() == 0.0
        assert stats.elapsed == 0.0
        assert stats.mean_latency(RequestKind.READ) == 0.0

    def test_page_writes_feed_bandwidth(self):
        stats = SimStats(page_size=4096, bandwidth_window=0.1)
        stats.note_host_page_write(0.0)
        stats.note_host_page_write(0.01)
        assert stats.written_pages == 2
        assert len(stats.write_bandwidth.samples_mbps()) == 1
