"""Tests for repro.reliability.interference: aggressor analysis."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rps import (
    fps_order,
    random_rps_order,
    rps_full_order,
    rps_half_order,
    unconstrained_random_order,
)
from repro.nand.page_types import PageType, page_index
from repro.reliability.interference import (
    aggressor_counts,
    aggressor_events,
    interference_exposure,
    max_aggressors,
    victim_pages,
)


class TestKnownOrders:
    @pytest.mark.parametrize("n", [2, 4, 16, 128])
    def test_fps_has_at_most_one_aggressor(self, n):
        counts = aggressor_counts(fps_order(n), n)
        assert max(counts) <= 1
        # Every word line except the last suffers exactly one.
        assert counts[:-1] == [1] * (n - 1)
        assert counts[-1] == 0

    @pytest.mark.parametrize("n", [2, 4, 16, 128])
    def test_rps_full_matches_fps_profile(self, n):
        assert aggressor_counts(rps_full_order(n), n) \
            == aggressor_counts(fps_order(n), n)

    @pytest.mark.parametrize("n", [2, 4, 16, 128])
    def test_rps_half_has_at_most_one_aggressor(self, n):
        assert max_aggressors(rps_half_order(n), n) <= 1

    def test_fps_aggressor_is_next_msb(self):
        events = aggressor_events(fps_order(4), 4)
        assert events[0] == [(1, PageType.MSB)]
        assert events[1] == [(2, PageType.MSB)]
        assert events[3] == []

    def test_unconstrained_can_reach_four(self):
        # Worst case of Figure 2(a): program WL(1) fully first, then
        # all four neighbours.
        order = [
            page_index(1, PageType.LSB), page_index(1, PageType.MSB),
            page_index(0, PageType.LSB), page_index(0, PageType.MSB),
            page_index(2, PageType.LSB), page_index(2, PageType.MSB),
        ]
        counts = aggressor_counts(order, 3)
        assert counts[1] == 4

    def test_incomplete_order_skips_unfinished_wordlines(self):
        # Only LSB pages written: no word line has a final state.
        order = [page_index(w, PageType.LSB) for w in range(4)]
        assert aggressor_counts(order, 4) == [0, 0, 0, 0]
        assert victim_pages(order, 4) == []


class TestExposureWeights:
    def test_equal_weights_match_counts(self):
        order = fps_order(8)
        assert interference_exposure(order, 8) == \
            [float(c) for c in aggressor_counts(order, 8)]

    def test_msb_weight_scales(self):
        order = fps_order(8)
        exposures = interference_exposure(order, 8, lsb_weight=1.0,
                                          msb_weight=0.5)
        # FPS aggressors are all MSB programs.
        assert exposures[:-1] == [0.5] * 7


class TestRpsNeverWorseProperty:
    @given(st.integers(min_value=2, max_value=48), st.integers())
    @settings(max_examples=80, deadline=None)
    def test_any_rps_order_has_at_most_one_aggressor(self, n, seed):
        """The paper's core device-level claim, as a property.

        Every step-wise RPS-legal order admits at most one aggressor
        program per word line — exactly the FPS guarantee, which is
        why Constraint 4 can be dropped.
        """
        rng = random.Random(seed)
        order = random_rps_order(n, rng)
        assert max_aggressors(order, n) <= 1

    @given(st.integers(min_value=2, max_value=32), st.integers())
    @settings(max_examples=40, deadline=None)
    def test_unconstrained_orders_bounded_by_four(self, n, seed):
        rng = random.Random(seed)
        order = unconstrained_random_order(n, rng)
        assert 0 <= max_aggressors(order, n) <= 4
