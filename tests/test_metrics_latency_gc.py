"""Tests for latency metrics and the GC-policy option."""

import pytest

from repro.ftl.base import FtlConfig
from repro.ftl.pageftl import PageFtl
import math

from repro.metrics.latency import (
    EMPTY_SUMMARY,
    latency_summary,
    percentile,
    summary_row,
)
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.queues import RequestKind

from tests.helpers import build_small_system


class TestLatencyMetrics:
    def test_percentile_nearest_rank(self):
        samples = [float(i) for i in range(100)]
        assert percentile(samples, 0.005) == 0.0
        assert percentile(samples, 0.5) == 50.0
        assert percentile(samples, 1.0) == 99.0

    def test_summary_fields(self):
        summary = latency_summary([1.0, 2.0, 3.0, 4.0])
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["max"] == 4.0
        assert summary["p50"] in (3.0, 2.0)

    def test_summary_row_formats_ms(self):
        row = summary_row("reads", [0.001, 0.002])
        assert row[0] == "reads"
        assert row[1] == "1.500"

    def test_empty_summary_is_nan(self):
        summary = latency_summary([])
        assert set(summary) == set(EMPTY_SUMMARY)
        assert all(math.isnan(value) for value in summary.values())
        # Each call returns a fresh dict, not the shared constant.
        summary["mean"] = 1.0
        assert math.isnan(latency_summary([])["mean"])

    def test_invalid_percentile_inputs_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            percentile([1.0], -0.5)


class TestGcPolicyOption:
    def run_heavy(self, policy, small_geometry):
        config = FtlConfig(gc_policy=policy)
        system = build_small_system(PageFtl, small_geometry,
                                    buffer_pages=32, ftl_config=config)
        sim, array, buffer, ftl, controller = system
        span = ftl.logical_pages * 3 // 4
        ops = [StreamOp(RequestKind.WRITE, (i * 7) % span, 1)
               for i in range(4 * span)]
        host = ClosedLoopHost(sim, controller, [ops])
        host.start()
        sim.run()
        return ftl, array

    def test_both_policies_collect_and_complete(self, small_geometry):
        for policy in ("greedy", "cost_benefit"):
            ftl, array = self.run_heavy(policy, small_geometry)
            assert array.total_erases > 0
            assert ftl.foreground_gcs + ftl.background_gcs > 0

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            FtlConfig(gc_policy="newest_first")

    def test_write_clock_advances(self, small_geometry):
        ftl, _ = self.run_heavy("cost_benefit", small_geometry)
        assert ftl._write_clock == \
            ftl.host_programs + ftl.gc_programs

    def test_fully_invalid_block_scores_infinite(self, small_geometry):
        config = FtlConfig(gc_policy="cost_benefit")
        system = build_small_system(PageFtl, small_geometry,
                                    ftl_config=config)
        ftl = system[3]
        pages = small_geometry.pages_per_block
        assert ftl._victim_score(0, invalid=pages) == float("inf")
        finite = ftl._victim_score(0, invalid=pages // 2)
        assert 0 < finite < float("inf")
