"""Focused tests for BaseFtl internals and controller details."""

import pytest

from repro.core.flexftl import FlexFtl
from repro.ftl.base import FtlConfig
from repro.ftl.pageftl import PageFtl
from repro.ftl.parityftl import ParityFtl
from repro.nand.geometry import NandGeometry
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.ops import OpKind
from repro.sim.queues import Request, RequestKind
from repro.sim.stats import SimStats

from tests.helpers import build_small_system

GEOMETRY = NandGeometry(channels=2, chips_per_channel=2,
                        blocks_per_chip=12, pages_per_block=8,
                        page_size=512)


def saturate(system, count, span):
    sim, array, buffer, ftl, controller = system
    ops = [StreamOp(RequestKind.WRITE, (i * 5) % span, 1)
           for i in range(count)]
    host = ClosedLoopHost(sim, controller, [ops])
    host.start()
    sim.run()


class TestPendingQueuePrecedence:
    def test_parity_ops_run_before_next_host_write(self):
        system = build_small_system(ParityFtl, GEOMETRY,
                                    buffer_pages=16)
        sim, array, buffer, ftl, controller = system
        # Two LSB host writes schedule one parity program into the
        # pending queue; it must be issued before a third host write
        # on the same chip.
        state = ftl.chips[0]
        assert not state.pending
        ftl.write_buffer.push(0, 0.0)
        op1 = ftl.next_op(0, 0.0)
        assert op1.tag == "host"
        ftl.write_buffer.push(1, 0.0)
        op2 = ftl.next_op(0, 0.0)
        assert op2.tag == "host"
        # FPS order starts LSB, LSB -> the pair triggers a parity op.
        assert state.pending
        ftl.write_buffer.push(2, 0.0)
        op3 = ftl.next_op(0, 0.0)
        assert op3.tag == "backup"

    def test_gc_program_follows_its_read(self):
        system = build_small_system(PageFtl, GEOMETRY, buffer_pages=16)
        sim, array, buffer, ftl, controller = system
        span = ftl.logical_pages * 3 // 4
        saturate(system, 4 * span, span)
        # every pending queue is drained at run end
        assert all(not state.pending for state in ftl.chips)


class TestGcInternals:
    def test_gc_skips_superseded_lpns(self):
        system = build_small_system(PageFtl, GEOMETRY, buffer_pages=16)
        sim, array, buffer, ftl, controller = system
        span = ftl.logical_pages // 2
        saturate(system, 3 * span, span)
        # Force a GC job and invalidate its entire work list.
        chip_id = 0
        victim = ftl._select_victim(chip_id)
        if victim is None:
            pytest.skip("no victim on chip 0 in this run")
        ftl._begin_gc(chip_id, victim, background=False)
        job = ftl.chips[chip_id].gc
        job.valid_lpns.clear()  # nothing left to move
        op = ftl._gc_step(chip_id)
        assert op.kind is OpKind.ERASE
        assert ftl.chips[chip_id].gc is None

    def test_begin_gc_twice_rejected(self):
        system = build_small_system(PageFtl, GEOMETRY, buffer_pages=16)
        _, _, _, ftl, _ = system
        span = ftl.logical_pages // 2
        saturate(system, 3 * span, span)
        victim = ftl._select_victim(0)
        if victim is None:
            pytest.skip("no victim")
        ftl._begin_gc(0, victim, background=False)
        other = ftl._select_victim(0)
        if other is not None:
            with pytest.raises(RuntimeError):
                ftl._begin_gc(0, other, background=False)

    def test_free_block_count_api(self):
        system = build_small_system(PageFtl, GEOMETRY)
        ftl = system[3]
        assert ftl.free_block_count(0) == GEOMETRY.blocks_per_chip

    def test_reserve_respected_for_host_allocations(self):
        config = FtlConfig(gc_reserve_blocks=3)
        system = build_small_system(PageFtl, GEOMETRY,
                                    ftl_config=config)
        ftl = system[3]
        state = ftl.chips[0]
        # drain down to the reserve
        taken = []
        while True:
            block = ftl._take_free_block(0)
            if block is None:
                break
            taken.append(block)
        assert len(state.free_blocks) == 3
        # GC allocations may dip into it
        assert ftl._take_free_block(0, for_gc=True) is not None


class TestControllerDetails:
    def test_pending_admissions_counter(self):
        system = build_small_system(PageFtl, GEOMETRY, buffer_pages=4)
        sim, _, _, _, controller = system
        controller.submit(Request(0.0, RequestKind.WRITE, 0, 20))
        assert controller.pending_admissions == 1
        sim.run()
        assert controller.pending_admissions == 0

    def test_multiple_queued_writes_complete_in_order(self):
        system = build_small_system(PageFtl, GEOMETRY, buffer_pages=4)
        sim, _, _, _, controller = system
        first = Request(0.0, RequestKind.WRITE, 0, 10)
        second = Request(0.0, RequestKind.WRITE, 50, 10)
        controller.submit(first)
        controller.submit(second)
        sim.run()
        assert first.completed_at <= second.completed_at

    def test_stats_swap_isolates_phases(self):
        system = build_small_system(PageFtl, GEOMETRY, buffer_pages=8)
        sim, _, _, _, controller = system
        controller.submit(Request(0.0, RequestKind.WRITE, 0, 4))
        sim.run()
        fresh = SimStats(page_size=GEOMETRY.page_size)
        controller.stats = fresh
        controller.submit(Request(sim.now, RequestKind.WRITE, 10, 2))
        sim.run()
        assert fresh.completed_writes == 1
        assert fresh.written_pages == 2

    def test_flexftl_bg_promotion_under_pressure(self):
        # A background GC in progress must not deadlock an urgent
        # host write: the base promotes it to foreground.
        config = FtlConfig(gc_threshold_fraction=0.4)
        system = build_small_system(FlexFtl, GEOMETRY, buffer_pages=8,
                                    ftl_config=config)
        sim, array, buffer, ftl, controller = system
        span = ftl.logical_pages * 3 // 4
        ops = [StreamOp(RequestKind.WRITE, (i * 7) % span, 1,
                        think_after=0.002 if i % 8 == 0 else 0.0)
               for i in range(5 * span)]
        host = ClosedLoopHost(sim, controller, [ops])
        host.start()
        sim.run()
        assert controller.stats.completed_writes == len(ops)
