"""Seeded chaos property suite: recovery never changes a byte.

Twenty-plus seeded cases crossing injected failure mode (worker
SIGKILL / hang), event-queue kernel (calendar / heap) and tenancy
(plain / QoS-fronted), each asserting the supervision oracle: a chaos
run with sufficient retry budget reports exactly the fleet fingerprint
of the undisturbed run, with the injected failures visible in the
health record.  Chaos plans come from :func:`repro.fleet.chaos
.random_plan`, so each seed drills a different (shard, turn, kind)
coordinate without losing reproducibility.
"""

import pytest

from repro.fleet import (
    FleetSpec,
    SupervisionPolicy,
    fleet_config,
    random_plan,
    run_fleet,
)

DEVICES = 4
OPS = 60
QUANTUM = 16
SHARDS = 2

#: Tuned for latency: hang injections sleep forever and are killed
#: after ~1.5s of heartbeat silence (device build takes milliseconds,
#: so a healthy worker can never miss the window).
POLICY = SupervisionPolicy(heartbeat_interval=0.05,
                           heartbeat_timeout=1.5,
                           backoff_base=0.02, backoff_cap=0.1)

_ORACLES = {}


def fleet_for(kernel, tenants, seed):
    return FleetSpec(devices=DEVICES, ops_per_device=OPS,
                     tenants=tenants, seed=seed,
                     config=fleet_config(kernel=kernel))


def oracle_fingerprint(kernel, tenants, seed):
    key = (kernel, tenants, seed)
    if key not in _ORACLES:
        result = run_fleet(fleet_for(kernel, tenants, seed), jobs=1)
        _ORACLES[key] = result.report.fingerprint()
    return _ORACLES[key]


@pytest.mark.parametrize("tenants", [0, 2])
@pytest.mark.parametrize("kernel", ["calendar", "heap"])
@pytest.mark.parametrize("chaos_seed", [0, 1, 2, 3, 4])
def test_chaos_recovers_to_oracle(tmp_path, chaos_seed, kernel,
                                  tenants):
    fleet_seed = 9 + chaos_seed
    plan = random_plan(chaos_seed, shards=SHARDS,
                       max_turn=(DEVICES // SHARDS) * 2, events=1)
    assert len(plan.events) == 1  # one injection per case

    result = run_fleet(
        fleet_for(kernel, tenants, fleet_seed),
        jobs=SHARDS,
        supervise=POLICY,
        chaos=plan,
        checkpoint_dir=str(tmp_path),
        checkpoint_every=30,
        quantum=QUANTUM,
    )

    assert result.report.fingerprint() \
        == oracle_fingerprint(kernel, tenants, fleet_seed)
    health = result.report.health
    # Exactly the injected failure fired, on the planned shard, and
    # was recovered by exactly one retry.
    event = plan.events[0]
    expected = {"kill": "worker_died", "hang": "hung"}[event.kind]
    assert health["kills_total"] == 1
    assert health["shards"][event.shard]["kills"] == [expected]
    assert health["retries_total"] == 1
    assert not result.report.degraded
    assert result.report.devices == DEVICES
