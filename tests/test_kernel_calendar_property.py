"""Property suite: the calendar kernel is order-identical to the heap.

Both kernels are driven through identical seeded interleavings of
schedule / cancel / partial-run / run-until operations, with delays
mixed across sub-bucket, bucket-boundary, multi-bucket and far-future
(overflow-heap) distances, and the full firing transcript —
``(now, tag)`` pairs plus the processed counter and final clock — must
match exactly.  A narrow-width, tiny-span calendar variant stresses
the overflow migration path that the default geometry never reaches.
"""

import random

import pytest

from repro.sim.kernel import HeapSimulator, Simulator

#: Delay menu [s]: same-instant, sub-bucket, exactly one default
#: bucket, the NAND latency quanta, and far-future timers past the
#: default 128 ms horizon.
DELAYS = (0.0, 1e-6, 40e-6, 50e-6, 499e-6, 500e-6, 501e-6,
          2e-3, 5e-3, 20e-3, 0.2)


def drive(make_sim, seed, steps=400):
    """One seeded interleaving; returns the full observable transcript."""
    rng = random.Random(seed)
    sim = make_sim()
    fired = []
    handles = []
    tag = 0

    def record(t):
        fired.append((round(sim.now, 12), t))

    for _ in range(steps):
        action = rng.random()
        if action < 0.55 or not handles:
            delay = rng.choice(DELAYS) * rng.randint(1, 3)
            handles.append(sim.schedule(delay, record, tag,
                                        priority=rng.randint(0, 2)))
            tag += 1
        elif action < 0.70:
            # Cancel a random handle — possibly one that already fired
            # or was cancelled before (both must be no-ops).
            handles[rng.randrange(len(handles))].cancel()
        elif action < 0.80:
            # Cancel-then-reschedule: the classic timer-reset pattern.
            handles[rng.randrange(len(handles))].cancel()
            handles.append(sim.schedule(rng.choice(DELAYS), record, tag,
                                        priority=rng.randint(0, 2)))
            tag += 1
        elif action < 0.92:
            sim.run(max_events=rng.randint(1, 5))
        else:
            sim.run(until=sim.now + rng.choice(DELAYS))
    sim.run()
    return fired, sim.processed, round(sim.now, 12), sim.pending


@pytest.mark.parametrize("seed", range(12))
def test_calendar_matches_heap(seed):
    assert drive(Simulator, seed) == drive(HeapSimulator, seed)


@pytest.mark.parametrize("seed", range(8))
def test_narrow_calendar_with_overflow_matches_heap(seed):
    """A 7 us bucket with a 4-bucket span forces nearly every push
    through the overflow heap and its migration path."""
    assert (drive(lambda: Simulator(bucket_width=7e-6, span=4), seed)
            == drive(HeapSimulator, seed))


@pytest.mark.parametrize("seed", range(4))
def test_wide_calendar_matches_heap(seed):
    """A bucket wider than any delay keeps everything in one bucket,
    exercising the in-bucket insort ordering."""
    assert (drive(lambda: Simulator(bucket_width=10.0), seed)
            == drive(HeapSimulator, seed))


def test_halt_mid_bucket_drops_later_entries():
    """Halting from a callback abandons the rest of the active bucket
    in both kernels, and both accept a fresh schedule afterwards."""

    def transcript(make_sim):
        sim = make_sim()
        fired = []
        sim.schedule(1e-6, fired.append, "a")
        sim.schedule(2e-6, lambda: (fired.append("halt"), sim.halt()))
        sim.schedule(3e-6, fired.append, "never")
        sim.schedule(4e-3, fired.append, "never-far")
        sim.run()
        sim.schedule(5e-6, fired.append, "rebooted")
        sim.run()
        return fired, sim.processed, sim.pending

    assert transcript(Simulator) == transcript(HeapSimulator)
    assert transcript(Simulator)[0] == ["a", "halt", "rebooted"]
