"""Property-based legality tests for the relaxed program sequence.

Two properties, both against :func:`constraint_violations` as the
oracle and :meth:`NandArray.program` as the implementation under test
(its legality check is hand-inlined for speed, so drift between the
two is a real hazard):

* **Differential**: over seeded-random walks of arbitrary candidate
  programs, the array accepts exactly the candidates the oracle
  permits — i.e. every sequence ``NandArray.program`` accepts
  satisfies the three retained RPS constraints, and it never rejects
  a legal one.  The same walk is run under FPS and NONE, covering the
  fourth constraint and the unconstrained fast path.
* **Inclusion**: every FPS-legal order is RPS-legal (the paper's
  claim that RPS strictly relaxes FPS) — random full FPS orders
  replay on an RPS device without a single rejection.

Each property runs hundreds of seeded cases; the generators live in
``tests/helpers.py``.
"""

import pytest

from repro.nand.array import NandArray
from repro.nand.errors import PageStateError, ProgramSequenceError
from repro.nand.geometry import NandGeometry, PhysicalPageAddress
from repro.nand.page_types import PageType
from repro.nand.sequence import SequenceScheme, constraint_violations

from tests.helpers import random_legal_order, random_page_walk

GEOMETRY = NandGeometry(channels=1, chips_per_channel=1,
                        blocks_per_chip=2, pages_per_block=16,
                        page_size=512)
WORDLINES = GEOMETRY.pages_per_block // 2

DIFFERENTIAL_SEEDS = range(100)
INCLUSION_SEEDS = range(100, 220)


def page_of(wordline, ptype):
    return 2 * wordline + (1 if ptype is PageType.MSB else 0)


@pytest.mark.parametrize("scheme", [SequenceScheme.RPS,
                                    SequenceScheme.FPS,
                                    SequenceScheme.NONE])
@pytest.mark.parametrize("seed", DIFFERENTIAL_SEEDS)
def test_program_accepts_exactly_oracle_legal(scheme, seed):
    array = NandArray(GEOMETRY, scheme=scheme, track_history=False)
    # two blocks interleaved: in-block constraints must not couple
    walks = {
        block: random_page_walk(seed * 2 + block, WORDLINES, 40)
        for block in range(GEOMETRY.blocks_per_chip)
    }
    programmed = {block: set() for block in walks}
    accepted = 0
    for step in range(40):
        for block, walk in walks.items():
            wordline, ptype = walk[step]

            def is_programmed(wl, pt, _block=block):
                return (wl, pt) in programmed[_block]

            violations = constraint_violations(
                is_programmed, WORDLINES, wordline, ptype, scheme)
            already = (wordline, ptype) in programmed[block]
            addr = PhysicalPageAddress(0, 0, block,
                                       page_of(wordline, ptype))
            if violations:
                with pytest.raises(ProgramSequenceError) as err:
                    array.program(addr)
                assert violations[0].split(":")[0] in str(err.value)
            elif already:
                with pytest.raises(PageStateError):
                    array.program(addr)
            else:
                latency = array.program(addr)
                assert latency > 0
                programmed[block].add((wordline, ptype))
                accepted += 1
            # the device's own notion of state must track the model's
            assert array.is_programmed(addr) == (
                (wordline, ptype) in programmed[block])
    assert accepted == array.total_programs


@pytest.mark.parametrize("seed", INCLUSION_SEEDS)
def test_every_fps_legal_order_is_rps_legal(seed):
    order = random_legal_order(seed, WORDLINES, SequenceScheme.FPS)
    assert len(order) == GEOMETRY.pages_per_block

    # oracle-level inclusion: replaying the FPS order step by step
    # never violates the three RPS constraints...
    programmed = set()
    for wordline, ptype in order:
        assert constraint_violations(
            lambda wl, pt: (wl, pt) in programmed, WORDLINES,
            wordline, ptype, SequenceScheme.RPS) == []
        programmed.add((wordline, ptype))

    # ... and device-level: an RPS device accepts the whole order
    array = NandArray(GEOMETRY, scheme=SequenceScheme.RPS,
                      track_history=False)
    for wordline, ptype in order:
        array.program(PhysicalPageAddress(0, 0, 0,
                                          page_of(wordline, ptype)))
    assert array.total_programs == GEOMETRY.pages_per_block
    assert array.lsb_programs == array.msb_programs == WORDLINES


@pytest.mark.parametrize("seed", range(220, 260))
def test_rps_orders_reject_under_fps_when_constraint4_broken(seed):
    """The inclusion is strict: random RPS orders that break
    Constraint 4 exist and FPS devices reject them at the breaking
    step."""
    order = random_legal_order(seed, WORDLINES, SequenceScheme.RPS)
    programmed = set()
    breaking = None
    for wordline, ptype in order:
        if constraint_violations(
                lambda wl, pt: (wl, pt) in programmed, WORDLINES,
                wordline, ptype, SequenceScheme.FPS):
            breaking = (wordline, ptype)
            break
        programmed.add((wordline, ptype))
    if breaking is None:
        return  # this seed happened to draw an FPS-legal order
    array = NandArray(GEOMETRY, scheme=SequenceScheme.FPS,
                      track_history=False)
    for wordline, ptype in order:
        addr = PhysicalPageAddress(0, 0, 0, page_of(wordline, ptype))
        if (wordline, ptype) == breaking:
            with pytest.raises(ProgramSequenceError,
                               match="constraint 4"):
                array.program(addr)
            return
        array.program(addr)
