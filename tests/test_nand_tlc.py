"""Tests for the TLC generalisation (repro.nand.tlc)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nand.tlc import (
    TLC_PROGRAM_TIMES,
    TlcPageType,
    TlcScheme,
    fps_tlc_order,
    is_valid_tlc_order,
    random_rps_tlc_order,
    rps_tlc_full_order,
    tlc_aggressor_counts,
    tlc_constraint_violations,
    tlc_max_aggressors,
    tlc_page_index,
    tlc_split_index,
    unconstrained_tlc_order,
    validate_tlc_order,
)

WORDLINE_COUNTS = [1, 2, 3, 4, 8, 64]


class TestTlcIndexing:
    def test_page_index_layout(self):
        assert tlc_page_index(0, TlcPageType.LSB) == 0
        assert tlc_page_index(0, TlcPageType.CSB) == 1
        assert tlc_page_index(0, TlcPageType.MSB) == 2
        assert tlc_page_index(2, TlcPageType.LSB) == 6

    def test_split_is_inverse(self):
        for index in range(60):
            wordline, ptype = tlc_split_index(index)
            assert tlc_page_index(wordline, ptype) == index

    def test_lsb_is_fast_and_cheapest(self):
        assert TlcPageType.LSB.is_fast
        assert not TlcPageType.MSB.is_fast
        assert TLC_PROGRAM_TIMES[TlcPageType.LSB] < \
            TLC_PROGRAM_TIMES[TlcPageType.CSB] < \
            TLC_PROGRAM_TIMES[TlcPageType.MSB]


class TestTlcOrders:
    @pytest.mark.parametrize("n", WORDLINE_COUNTS)
    def test_fps_tlc_satisfies_both_schemes(self, n):
        order = fps_tlc_order(n)
        assert sorted(order) == list(range(3 * n))
        assert is_valid_tlc_order(order, n, TlcScheme.FPS)
        assert is_valid_tlc_order(order, n, TlcScheme.RPS)

    @pytest.mark.parametrize("n", WORDLINE_COUNTS)
    def test_rps_full_is_rps_legal(self, n):
        order = rps_tlc_full_order(n)
        assert is_valid_tlc_order(order, n, TlcScheme.RPS)

    @pytest.mark.parametrize("n", [4, 8, 64])
    def test_rps_full_violates_fps(self, n):
        violations = validate_tlc_order(rps_tlc_full_order(n), n,
                                        TlcScheme.FPS)
        assert any("over-spec" in v for v in violations)

    def test_fps_order_is_three_deep_stagger(self):
        order = fps_tlc_order(4)
        head = order[:6]
        assert head == [
            tlc_page_index(0, TlcPageType.LSB),
            tlc_page_index(1, TlcPageType.LSB),
            tlc_page_index(0, TlcPageType.CSB),
            tlc_page_index(2, TlcPageType.LSB),
            tlc_page_index(1, TlcPageType.CSB),
            tlc_page_index(0, TlcPageType.MSB),
        ]

    @pytest.mark.parametrize("seed", range(8))
    def test_random_rps_tlc_orders_legal(self, seed):
        rng = random.Random(seed)
        order = random_rps_tlc_order(12, rng)
        assert is_valid_tlc_order(order, 12, TlcScheme.RPS)

    def test_none_scheme_accepts_shuffles(self):
        rng = random.Random(1)
        order = unconstrained_tlc_order(8, rng)
        assert is_valid_tlc_order(order, 8, TlcScheme.NONE)

    def test_pairing_enforced(self):
        checker = lambda w, t: False
        violations = tlc_constraint_violations(checker, 4, 0,
                                               TlcPageType.MSB,
                                               TlcScheme.RPS)
        assert any("pairing" in v for v in violations)


class TestTlcInterference:
    @pytest.mark.parametrize("n", [2, 4, 8, 64])
    def test_fps_tlc_at_most_one_aggressor(self, n):
        assert tlc_max_aggressors(fps_tlc_order(n), n) <= 1

    @pytest.mark.parametrize("n", [2, 4, 8, 64])
    def test_rps_full_tlc_at_most_one_aggressor(self, n):
        assert tlc_max_aggressors(rps_tlc_full_order(n), n) <= 1

    def test_unconstrained_tlc_can_reach_six(self):
        # WL(1) fully written first, then all six neighbour pages.
        order = [tlc_page_index(1, t) for t in TlcPageType]
        order += [tlc_page_index(0, t) for t in TlcPageType]
        order += [tlc_page_index(2, t) for t in TlcPageType]
        assert tlc_aggressor_counts(order, 3)[1] == 6

    @given(st.integers(min_value=2, max_value=32), st.integers())
    @settings(max_examples=60, deadline=None)
    def test_any_rps_tlc_order_at_most_one_aggressor(self, n, seed):
        """The paper's Section 1 claim, generalised: the RPS property
        (<= 1 post-program aggressor) carries over to TLC."""
        rng = random.Random(seed)
        order = random_rps_tlc_order(n, rng)
        assert tlc_max_aggressors(order, n) <= 1

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            fps_tlc_order(0)
        with pytest.raises(ValueError):
            tlc_page_index(-1, TlcPageType.LSB)
        violations = validate_tlc_order([0, 0], 1, TlcScheme.RPS)
        assert any("twice" in v for v in violations)
