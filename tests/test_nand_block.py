"""Tests for repro.nand.block."""

import pytest

from repro.nand.block import Block, BlockState, PageState
from repro.nand.errors import EccUncorrectableError, PageStateError
from repro.nand.page_types import PageType


class TestBlockLifecycle:
    def test_fresh_block_is_free(self):
        block = Block(0, wordlines=4)
        assert block.state is BlockState.FREE
        assert block.erase_count == 0
        assert block.programmed_count() == 0
        assert block.free_count() == 8

    def test_program_transitions_to_open(self):
        block = Block(0, wordlines=4)
        block.program(0, PageType.LSB)
        assert block.state is BlockState.OPEN
        assert block.is_programmed(0, PageType.LSB)
        assert not block.is_programmed(0, PageType.MSB)

    def test_full_after_all_pages(self):
        block = Block(0, wordlines=2)
        for wordline in range(2):
            block.program(wordline, PageType.LSB)
        for wordline in range(2):
            block.program(wordline, PageType.MSB)
        assert block.state is BlockState.FULL
        assert block.free_count() == 0

    def test_erase_resets_everything(self):
        block = Block(0, wordlines=2, store_data=True)
        block.program(0, PageType.LSB, b"abc")
        block.erase()
        assert block.state is BlockState.FREE
        assert block.erase_count == 1
        assert block.program_history == []
        with pytest.raises(EccUncorrectableError):
            block.read(0, PageType.LSB)

    def test_double_program_rejected(self):
        block = Block(0, wordlines=2)
        block.program(0, PageType.LSB)
        with pytest.raises(PageStateError):
            block.program(0, PageType.LSB)

    def test_program_out_of_range_wordline(self):
        block = Block(0, wordlines=2)
        with pytest.raises(ValueError):
            block.program(2, PageType.LSB)


class TestBlockData:
    def test_data_roundtrip_when_storing(self):
        block = Block(0, wordlines=2, store_data=True)
        block.program(1, PageType.LSB, b"hello")
        assert block.read(1, PageType.LSB) == b"hello"

    def test_metadata_only_returns_none(self):
        block = Block(0, wordlines=2, store_data=False)
        block.program(1, PageType.LSB, b"hello")
        assert block.read(1, PageType.LSB) is None

    def test_reading_erased_page_raises(self):
        block = Block(0, wordlines=2)
        with pytest.raises(EccUncorrectableError):
            block.read(0, PageType.MSB)


class TestDestroy:
    def test_destroyed_page_is_unreadable(self):
        block = Block(0, wordlines=2, store_data=True)
        block.program(0, PageType.LSB, b"x")
        block.destroy_page(0, PageType.LSB)
        assert block.page_state(0) is PageState.DESTROYED
        with pytest.raises(EccUncorrectableError):
            block.read(0, PageType.LSB)

    def test_destroying_erased_page_rejected(self):
        block = Block(0, wordlines=2)
        with pytest.raises(PageStateError):
            block.destroy_page(0, PageType.LSB)

    def test_destroyed_counts_as_programmed_capacity(self):
        block = Block(0, wordlines=2)
        block.program(0, PageType.LSB)
        block.destroy_page(0, PageType.LSB)
        # The page is not erased: the capacity is consumed.
        assert block.free_count() == 3
        assert block.programmed_count() == 1


class TestCounting:
    def test_counts_by_type(self):
        block = Block(0, wordlines=3)
        block.program(0, PageType.LSB)
        block.program(1, PageType.LSB)
        assert block.programmed_count(PageType.LSB) == 2
        assert block.programmed_count(PageType.MSB) == 0
        assert block.free_count(PageType.LSB) == 1
        assert block.free_count(PageType.MSB) == 3

    def test_history_records_order(self):
        block = Block(0, wordlines=2)
        block.program(0, PageType.LSB)
        block.program(1, PageType.LSB)
        block.program(0, PageType.MSB)
        assert block.program_history == [0, 2, 1]
