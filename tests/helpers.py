"""Shared system builders and seeded generators for the test suite."""

import random

from repro.core.flexftl import FlexFtl
from repro.ftl.base import FtlConfig
from repro.ftl.pageftl import PageFtl
from repro.ftl.parityftl import ParityFtl
from repro.ftl.rtfftl import RtfFtl
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.sequence import SequenceScheme
from repro.nand.timing import NandTiming
from repro.sim.controller import StorageController
from repro.sim.kernel import Simulator
from repro.sim.queues import WriteBuffer
from repro.sim.stats import SimStats

#: FTL class -> device sequence scheme it requires.
FTL_SCHEMES = {
    PageFtl: SequenceScheme.FPS,
    ParityFtl: SequenceScheme.FPS,
    RtfFtl: SequenceScheme.FPS,
    FlexFtl: SequenceScheme.RPS,
}


def random_page_walk(seed, wordlines, steps):
    """Seeded stream of arbitrary ``(wordline, ptype)`` candidates.

    Deliberately scheme-ignorant: roughly half the candidates violate
    an ordering constraint or re-target a programmed page, which is
    exactly what a differential legality test wants to see.
    """
    from repro.nand.page_types import PageType

    rng = random.Random(seed)
    return [
        (rng.randrange(wordlines),
         PageType.MSB if rng.random() < 0.5 else PageType.LSB)
        for _ in range(steps)
    ]


def random_legal_order(seed, wordlines, scheme):
    """A full in-block program order legal under ``scheme``.

    Built constraint-first: at every step one candidate is drawn
    uniformly from the pages :func:`constraint_violations` currently
    permits, so the result exercises the *whole* legal order space of
    the scheme, not just the canonical zig-zag.
    """
    from repro.nand.page_types import PageType
    from repro.nand.sequence import constraint_violations

    rng = random.Random(seed)
    programmed = set()

    def is_programmed(wordline, ptype):
        return (wordline, ptype) in programmed

    order = []
    total = 2 * wordlines
    while len(order) < total:
        candidates = [
            (wordline, ptype)
            for wordline in range(wordlines)
            for ptype in (PageType.LSB, PageType.MSB)
            if (wordline, ptype) not in programmed
            and not constraint_violations(
                is_programmed, wordlines, wordline, ptype, scheme)
        ]
        assert candidates, f"scheme {scheme} wedged after {order}"
        choice = rng.choice(candidates)
        programmed.add(choice)
        order.append(choice)
    return order


def build_small_system(ftl_cls, geometry, buffer_pages=32,
                       ftl_config=None, timing=None, **ftl_kwargs):
    """Assemble a complete simulated system for tests.

    Returns ``(sim, array, buffer, ftl, controller)``.
    """
    scheme = FTL_SCHEMES[ftl_cls]
    sim = Simulator()
    array = NandArray(geometry, timing or NandTiming(), scheme=scheme)
    buffer = WriteBuffer(buffer_pages)
    ftl = ftl_cls(array, buffer, ftl_config or FtlConfig(), **ftl_kwargs)
    stats = SimStats(page_size=geometry.page_size)
    controller = StorageController(sim, array, ftl, buffer, stats)
    return sim, array, buffer, ftl, controller
