"""Shared system builders for the test suite."""

from repro.core.flexftl import FlexFtl
from repro.ftl.base import FtlConfig
from repro.ftl.pageftl import PageFtl
from repro.ftl.parityftl import ParityFtl
from repro.ftl.rtfftl import RtfFtl
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.sequence import SequenceScheme
from repro.nand.timing import NandTiming
from repro.sim.controller import StorageController
from repro.sim.kernel import Simulator
from repro.sim.queues import WriteBuffer
from repro.sim.stats import SimStats

#: FTL class -> device sequence scheme it requires.
FTL_SCHEMES = {
    PageFtl: SequenceScheme.FPS,
    ParityFtl: SequenceScheme.FPS,
    RtfFtl: SequenceScheme.FPS,
    FlexFtl: SequenceScheme.RPS,
}


def build_small_system(ftl_cls, geometry, buffer_pages=32,
                       ftl_config=None, timing=None, **ftl_kwargs):
    """Assemble a complete simulated system for tests.

    Returns ``(sim, array, buffer, ftl, controller)``.
    """
    scheme = FTL_SCHEMES[ftl_cls]
    sim = Simulator()
    array = NandArray(geometry, timing or NandTiming(), scheme=scheme)
    buffer = WriteBuffer(buffer_pages)
    ftl = ftl_cls(array, buffer, ftl_config or FtlConfig(), **ftl_kwargs)
    stats = SimStats(page_size=geometry.page_size)
    controller = StorageController(sim, array, ftl, buffer, stats)
    return sim, array, buffer, ftl, controller
