"""Tests for the LSB-only slcFTL baseline."""

import pytest

from repro.ftl.slcftl import SlcFtl
from repro.nand.array import NandArray
from repro.nand.page_types import PageType
from repro.nand.sequence import SequenceScheme
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.queues import RequestKind, WriteBuffer

from tests.helpers import FTL_SCHEMES, build_small_system

FTL_SCHEMES[SlcFtl] = SequenceScheme.RPS


def run_writes(system, count, span):
    sim, array, buffer, ftl, controller = system
    ops = [StreamOp(RequestKind.WRITE, (i * 3) % span, 1)
           for i in range(count)]
    host = ClosedLoopHost(sim, controller, [ops])
    host.start()
    sim.run()
    return controller.stats


class TestSlcFtl:
    def test_rejects_fps_device(self, small_geometry):
        array = NandArray(small_geometry, scheme=SequenceScheme.FPS)
        with pytest.raises(ValueError):
            SlcFtl(array, WriteBuffer(8))

    def test_logical_space_is_half(self, small_geometry):
        from repro.ftl.pageftl import PageFtl
        slc = build_small_system(SlcFtl, small_geometry)[3]
        page = build_small_system(PageFtl, small_geometry)[3]
        assert slc.logical_pages == page.logical_pages // 2

    def test_never_programs_msb(self, small_geometry):
        system = build_small_system(SlcFtl, small_geometry)
        _, array, _, ftl, _ = system
        span = ftl.logical_pages
        run_writes(system, 3 * span, span)
        assert array.msb_programs == 0
        assert array.lsb_programs > 0
        assert array.total_erases > 0  # GC worked LSB-only

    def test_every_page_type_is_fast(self, small_geometry):
        system = build_small_system(SlcFtl, small_geometry)
        sim, array, buffer, ftl, controller = system
        stats = run_writes(system, 64, span=128)
        assert stats.completed_writes == 64
        for chip in array.chips:
            for block in chip.blocks:
                for index in block.program_history:
                    assert index % 2 == int(PageType.LSB)

    def test_mapping_consistent_under_overwrites(self, small_geometry):
        system = build_small_system(SlcFtl, small_geometry)
        _, _, _, ftl, _ = system
        span = 32
        run_writes(system, 10 * span, span)
        live = 0
        for lpn in range(span):
            ppn = ftl.lookup(lpn)
            assert ppn is not None
            live += 1
        total_valid = sum(
            ftl.mapping.valid_count(gb)
            for gb in range(small_geometry.total_blocks)
        )
        assert total_valid == live

    def test_no_backup_blocks(self, small_geometry):
        ftl = build_small_system(SlcFtl, small_geometry)[3]
        assert ftl.backup_programs == 0
        assert all(state.backup is None for state in ftl.chips)
