"""Tests for the experiment drivers (scaled-down populations)."""

import dataclasses

import pytest

from repro.experiments.ablation import (
    render_ablation,
    run_parity_ablation,
    run_quota_ablation,
)
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig8 import run_fig8
from repro.experiments.recovery import (
    reboot_overhead_report,
    run_spo_recovery,
)
from repro.experiments.runner import (
    EXPERIMENT_GEOMETRY,
    ExperimentConfig,
    build_system,
    experiment_span,
    run_workload,
)
from repro.experiments.table1 import (
    characterize,
    classify_intensity,
    render_table1,
    run_table1,
)
from repro.nand.geometry import NandGeometry
from repro.workloads.benchmarks import build_workload

#: Small device so experiment-driver tests stay fast.
TEST_CONFIG = ExperimentConfig(
    geometry=NandGeometry(channels=2, chips_per_channel=2,
                          blocks_per_chip=16, pages_per_block=16,
                          page_size=2048),
    buffer_pages=64,
)


class TestRunner:
    def test_build_system_unknown_ftl(self):
        with pytest.raises(KeyError):
            build_system("nopeFTL")

    def test_build_system_all_registered(self):
        for name in ("pageFTL", "parityFTL", "rtfFTL", "flexFTL"):
            sim, array, buffer, ftl, controller = build_system(
                name, TEST_CONFIG)
            assert ftl.name == name

    def test_experiment_span_uses_smallest_ftl(self):
        span = experiment_span(TEST_CONFIG, utilization=0.5)
        smallest = min(build_system(n, TEST_CONFIG)[3].logical_pages
                       for n in ("pageFTL", "flexFTL"))
        assert span == int(0.5 * smallest)

    def test_run_workload_measured_phase_only(self):
        span = experiment_span(TEST_CONFIG, utilization=0.5)
        streams = build_workload("OLTP", span, total_ops=300, seed=1)
        result = run_workload(ftl_name="pageFTL", streams=streams,
                              config=TEST_CONFIG)
        # Warmup wrote the whole span but is excluded from counters.
        assert result.stats.completed_requests == \
            sum(len(s) for s in streams)
        assert result.counters["host_programs"] < span + 100

    def test_results_are_reproducible(self):
        span = experiment_span(TEST_CONFIG, utilization=0.5)
        streams = build_workload("Varmail", span, total_ops=300, seed=3)
        a = run_workload(ftl_name="flexFTL", streams=streams,
                         config=TEST_CONFIG)
        b = run_workload(ftl_name="flexFTL", streams=streams,
                         config=TEST_CONFIG)
        assert a.iops == pytest.approx(b.iops)
        assert a.erases == b.erases

    def test_default_geometry_is_scaled_paper_shape(self):
        assert EXPERIMENT_GEOMETRY.page_size == 4096
        assert EXPERIMENT_GEOMETRY.pages_per_block % 2 == 0


class TestTable1Driver:
    def test_run_table1_covers_all_workloads(self):
        characteristics = run_table1(logical_pages=2048, total_ops=2000)
        assert set(characteristics) == {
            "OLTP", "NTRX", "Webserver", "Varmail", "Fileserver"}

    def test_measured_ratios_match_configured(self):
        characteristics = run_table1(logical_pages=2048, total_ops=4000)
        assert characteristics["OLTP"].read_fraction == \
            pytest.approx(0.7, abs=0.05)
        assert characteristics["Varmail"].read_fraction == \
            pytest.approx(0.5, abs=0.05)

    def test_intensity_classes(self):
        characteristics = run_table1(logical_pages=2048, total_ops=4000)
        assert characteristics["OLTP"].intensiveness == "very high"
        assert characteristics["Webserver"].intensiveness == "moderate"
        assert characteristics["Varmail"].intensiveness == "high"
        assert characteristics["Fileserver"].intensiveness == "high"

    def test_classify_intensity_edges(self):
        assert classify_intensity(0.0, 0.0) == "very high"
        assert classify_intensity(0.01, 0.0) == "high"
        assert classify_intensity(0.01, 0.01) == "moderate"

    def test_render_contains_rows(self):
        table = render_table1(run_table1(logical_pages=1024,
                                         total_ops=1000))
        assert "Read:Write" in table
        assert "I/O intensiveness" in table

    def test_characterize_rejects_empty(self):
        with pytest.raises(ValueError):
            characterize("empty", [[]])


class TestFig4Driver:
    def test_small_population_shape(self):
        result = run_fig4(blocks=8, wordlines=16, seed=5)
        assert result.rps_matches_fps()
        fps = result.results["FPS"]
        unconstrained = result.results["unconstrained"]
        assert unconstrained.wpi.median > fps.wpi.median
        assert unconstrained.ber.median > fps.ber.median

    def test_render_mentions_panels(self):
        result = run_fig4(blocks=2, wordlines=8)
        text = result.render()
        assert "Figure 4(a)" in text
        assert "Figure 4(b)" in text
        assert "FPS" in text


class TestRecoveryDriver:
    def test_spo_recovery_succeeds(self):
        scenario = run_spo_recovery(wordlines=16, page_size=256, seed=4)
        assert scenario.success
        assert scenario.report.data_was_lost

    def test_spo_recovery_various_interrupt_points(self):
        for point in (0, 3, 15):
            scenario = run_spo_recovery(wordlines=16, page_size=128,
                                        msb_written_before_loss=point)
            assert scenario.success
            assert scenario.lost_wordline == point

    def test_invalid_interrupt_point(self):
        with pytest.raises(ValueError):
            run_spo_recovery(wordlines=8, msb_written_before_loss=8)

    def test_reboot_report_contains_paper_number(self):
        assert "81.92" in reboot_overhead_report()


class TestFig8Driver:
    @pytest.fixture(scope="class")
    def quick_result(self):
        return run_fig8(workloads=("Varmail",), config=TEST_CONFIG,
                        scale=0.05, utilization=0.6)

    def test_structure(self, quick_result):
        assert set(quick_result.runs) == {"Varmail"}
        assert set(quick_result.runs["Varmail"]) == {
            "pageFTL", "parityFTL", "rtfFTL", "flexFTL"}

    def test_normalized_iops_has_unit_baseline(self, quick_result):
        normalized = quick_result.normalized_iops()
        assert normalized["Varmail"]["pageFTL"] == pytest.approx(1.0)

    def test_render_contains_panels(self, quick_result):
        text = quick_result.render()
        assert "Figure 8(a)" in text
        assert "Figure 8(b)" in text
        assert "Figure 8(c)" in text


class TestAblationDrivers:
    def test_quota_ablation_runs(self):
        points = run_quota_ablation(fractions=(0.01, 0.05),
                                    total_ops=400, config=TEST_CONFIG,
                                    utilization=0.5)
        assert len(points) == 2
        assert all(p.iops > 0 for p in points)
        rendered = render_ablation(points)
        assert "q0=0.05" in rendered

    def test_parity_ablation_counts_backups(self):
        points = run_parity_ablation(intervals=(2, 0), total_ops=400,
                                     config=TEST_CONFIG,
                                     utilization=0.5)
        per_block = points["flexFTL (per block)"]
        fine = points["flexFTL (per 2 LSBs)"]
        parity = points["parityFTL (per 2 LSBs, FPS)"]
        assert per_block.result.counters["backup_programs"] < \
            fine.result.counters["backup_programs"]
        assert per_block.result.counters["backup_programs"] < \
            parity.result.counters["backup_programs"]
