"""Tests for repro.nand.geometry."""

import pytest

from repro.nand.errors import AddressError
from repro.nand.geometry import (
    PAPER_GEOMETRY,
    NandGeometry,
    PhysicalPageAddress,
)


class TestGeometryValidation:
    def test_defaults_are_paper_geometry(self):
        geometry = NandGeometry()
        assert geometry.channels == 8
        assert geometry.chips_per_channel == 4
        assert geometry.blocks_per_chip == 512
        assert geometry.pages_per_block == 256
        assert geometry.page_size == 4096

    def test_paper_capacity_is_16_gb(self):
        assert PAPER_GEOMETRY.capacity_bytes == 16 * 1024 ** 3

    def test_paper_total_chips(self):
        assert PAPER_GEOMETRY.total_chips == 32

    def test_wordlines_are_half_the_pages(self):
        assert PAPER_GEOMETRY.wordlines_per_block == 128

    @pytest.mark.parametrize("field", [
        "channels", "chips_per_channel", "blocks_per_chip",
        "pages_per_block", "page_size",
    ])
    def test_rejects_non_positive_dimensions(self, field):
        with pytest.raises(ValueError):
            NandGeometry(**{field: 0})

    def test_rejects_odd_pages_per_block(self):
        with pytest.raises(ValueError):
            NandGeometry(pages_per_block=7)

    def test_total_pages(self):
        geometry = NandGeometry(channels=2, chips_per_channel=2,
                                blocks_per_chip=4, pages_per_block=8)
        assert geometry.total_pages == 2 * 2 * 4 * 8
        assert geometry.total_blocks == 2 * 2 * 4


class TestChipIds:
    def test_chip_id_roundtrip(self):
        geometry = NandGeometry(channels=3, chips_per_channel=5,
                                blocks_per_chip=2, pages_per_block=4)
        seen = set()
        for channel in range(3):
            for chip in range(5):
                cid = geometry.chip_id(channel, chip)
                assert geometry.chip_coords(cid) == (channel, chip)
                seen.add(cid)
        assert seen == set(range(15))

    def test_chip_id_out_of_range(self):
        geometry = NandGeometry()
        with pytest.raises(AddressError):
            geometry.chip_id(99, 0)
        with pytest.raises(AddressError):
            geometry.chip_coords(geometry.total_chips)


class TestPpnEncoding:
    def test_ppn_roundtrip_exhaustive_on_tiny_device(self):
        geometry = NandGeometry(channels=2, chips_per_channel=2,
                                blocks_per_chip=3, pages_per_block=4)
        for ppn in range(geometry.total_pages):
            addr = geometry.address_of(ppn)
            assert geometry.ppn(addr) == ppn

    def test_ppn_is_dense_and_unique(self):
        geometry = NandGeometry(channels=2, chips_per_channel=1,
                                blocks_per_chip=2, pages_per_block=4)
        ppns = set()
        for channel in range(2):
            for block in range(2):
                for page in range(4):
                    addr = PhysicalPageAddress(channel, 0, block, page)
                    ppns.add(geometry.ppn(addr))
        assert ppns == set(range(geometry.total_pages))

    def test_address_of_out_of_range(self):
        geometry = NandGeometry()
        with pytest.raises(AddressError):
            geometry.address_of(-1)
        with pytest.raises(AddressError):
            geometry.address_of(geometry.total_pages)

    def test_validate_rejects_bad_addresses(self):
        geometry = NandGeometry(channels=1, chips_per_channel=1,
                                blocks_per_chip=1, pages_per_block=2)
        good = PhysicalPageAddress(0, 0, 0, 1)
        geometry.validate(good)
        for bad in [
            PhysicalPageAddress(1, 0, 0, 0),
            PhysicalPageAddress(0, 1, 0, 0),
            PhysicalPageAddress(0, 0, 1, 0),
            PhysicalPageAddress(0, 0, 0, 2),
            PhysicalPageAddress(-1, 0, 0, 0),
        ]:
            with pytest.raises(AddressError):
                geometry.validate(bad)

    def test_pages_per_chip_matches_ppn_layout(self):
        geometry = NandGeometry(channels=2, chips_per_channel=2,
                                blocks_per_chip=3, pages_per_block=4)
        for ppn in range(geometry.total_pages):
            addr = geometry.address_of(ppn)
            cid = geometry.chip_id(addr.channel, addr.chip)
            assert ppn // geometry.pages_per_chip == cid
