"""Tests for repro.sim.kernel: the DES event loop."""

import math

import pytest

from repro.sim.kernel import HeapSimulator, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.3, fired.append, "c")
        sim.schedule(0.1, fired.append, "a")
        sim.schedule(0.2, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_priority_then_fifo(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.1, fired.append, "second", priority=1)
        sim.schedule(0.1, fired.append, "third", priority=1)
        sim.schedule(0.1, fired.append, "first", priority=0)
        sim.run()
        assert fired == ["first", "second", "third"]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.5]
        assert sim.now == 0.5

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.schedule(0.1, chain, depth + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == pytest.approx(0.3)


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(0.1, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(0.1, lambda: None)
        sim.schedule(0.2, lambda: None)
        first.cancel()
        assert sim.peek_time() == pytest.approx(0.2)


class TestRunControls:
    def test_run_until_stops_the_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.1, fired.append, "early")
        sim.schedule(1.0, fired.append, "late")
        sim.run(until=0.5)
        assert fired == ["early"]
        assert sim.now == 0.5
        sim.run()
        assert fired == ["early", "late"]

    def test_max_events_backstop(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.1, forever)

        sim.schedule(0.0, forever)
        sim.run(max_events=25)
        assert sim.processed == 25

    def test_step_on_empty_queue(self):
        sim = Simulator()
        assert sim.step() is False

    def test_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(i * 0.1, lambda: None)
        sim.run()
        assert sim.processed == 5


class TestEdgeCases:
    """Corner cases of the flat-heap kernel rewrite."""

    def test_cancel_after_halt_is_a_noop(self):
        sim = Simulator()
        dropped = sim.schedule(0.5, lambda: None)
        sim.schedule(0.7, lambda: None)
        sim.halt()
        assert sim.pending == 0
        # The handle outlives the queue; cancelling it must not corrupt
        # the (fresh) cancellation counter of the rebooted simulator.
        dropped.cancel()
        dropped.cancel()
        assert dropped.cancelled
        assert sim.pending == 0
        fired = []
        sim.schedule(0.1, fired.append, "post-reboot")
        assert sim.pending == 1
        sim.run()
        assert fired == ["post-reboot"]
        assert sim.pending == 0

    def test_halt_discards_pending_cancellations(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None).cancel()
        sim.schedule(0.2, lambda: None).cancel()
        sim.halt()
        live = sim.schedule(0.3, lambda: None)
        assert sim.pending == 1
        live.cancel()
        assert sim.pending == 0

    def test_schedule_at_exactly_now_fires_before_time_advances(self):
        sim = Simulator()
        fired = []

        def reschedule():
            sim.schedule_at(sim.now, fired.append, sim.now)

        sim.schedule(0.5, reschedule)
        sim.schedule(0.6, fired.append, "later")
        sim.run()
        assert fired == [0.5, "later"]

    def test_run_until_between_events_parks_the_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "x")
        sim.run(until=0.25)
        assert sim.now == 0.25
        assert fired == []
        sim.run(until=0.75)
        assert sim.now == 0.75
        assert fired == []
        sim.run()
        assert fired == ["x"]
        assert sim.now == 1.0

    def test_run_until_exactly_at_event_time_fires_it(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.5, fired.append, "at")
        sim.schedule(0.8, fired.append, "after")
        sim.run(until=0.5)
        assert fired == ["at"]
        assert sim.now == 0.5

    def test_tie_break_is_fifo_across_schedule_flavours(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.2, fired.append, "a")
        sim.schedule_at(0.2, fired.append, "b")
        sim.schedule(0.2, fired.append, "c")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_tie_break_survives_interleaved_cancellation(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.2, fired.append, "a")
        victim = sim.schedule(0.2, fired.append, "b")
        sim.schedule(0.2, fired.append, "c")
        victim.cancel()
        assert sim.pending == 2
        sim.run()
        assert fired == ["a", "c"]
        assert sim.pending == 0

    def test_pending_counts_only_live_events(self):
        sim = Simulator()
        events = [sim.schedule(0.1 * (i + 1), lambda: None)
                  for i in range(4)]
        assert sim.pending == 4
        events[0].cancel()
        events[2].cancel()
        assert sim.pending == 2
        events[0].cancel()  # double-cancel must not double-count
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0

    def test_repr_handles_unnamed_callables(self):
        import functools

        sim = Simulator()
        event = sim.schedule(0.1, functools.partial(print, "x"))
        assert "pending" in repr(event)
        event.cancel()
        assert "cancelled" in repr(event)


@pytest.mark.parametrize("kernel", [Simulator, HeapSimulator],
                         ids=["calendar", "heap"])
class TestScheduleGuards:
    """Bad times must be rejected loudly, by both kernels alike.

    A NaN would silently corrupt the queue order (every comparison
    against it is False), an infinity would never fire, and the past
    is always a modelling bug.
    """

    def test_nan_delay_rejected(self, kernel):
        sim = kernel()
        with pytest.raises(ValueError, match="NaN"):
            sim.schedule(math.nan, lambda: None)

    def test_nan_absolute_time_rejected(self, kernel):
        sim = kernel()
        with pytest.raises(ValueError, match="NaN"):
            sim.schedule_at(math.nan, lambda: None)

    def test_negative_delay_rejected(self, kernel):
        sim = kernel()
        with pytest.raises(ValueError, match="non-negative"):
            sim.schedule(-1e-9, lambda: None)

    def test_past_absolute_time_rejected(self, kernel):
        sim = kernel()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError, match="before now"):
            sim.schedule_at(0.999, lambda: None)

    def test_infinite_times_rejected(self, kernel):
        sim = kernel()
        with pytest.raises(ValueError, match="finite"):
            sim.schedule(math.inf, lambda: None)
        with pytest.raises(ValueError, match="infinite"):
            sim.schedule_at(math.inf, lambda: None)

    def test_rejected_schedule_leaves_queue_intact(self, kernel):
        sim = kernel()
        fired = []
        sim.schedule(0.1, fired.append, "ok")
        for bad in (math.nan, -0.5, math.inf):
            with pytest.raises(ValueError):
                sim.schedule(bad, fired.append, "never")
        assert sim.pending == 1
        sim.run()
        assert fired == ["ok"]


class TestCalendarStructure:
    """Calendar-queue specifics: construction, buckets, overflow."""

    def test_bad_bucket_width_rejected(self):
        for width in (0.0, -1e-6, math.nan):
            with pytest.raises(ValueError, match="bucket_width"):
                Simulator(bucket_width=width)

    def test_bad_span_rejected(self):
        with pytest.raises(ValueError, match="span"):
            Simulator(span=1)

    def test_far_future_events_fire_in_order(self):
        # span=2 at 1 ms buckets: anything past 2 ms overflows into
        # the far heap and must migrate back in order.
        sim = Simulator(bucket_width=1e-3, span=2)
        fired = []
        for delay in (0.5, 0.009, 0.0005, 0.1, 0.0021, 0.003):
            sim.schedule(delay, fired.append, delay)
        sim.run()
        assert fired == sorted(fired)

    def test_same_instant_push_respects_priority_of_fired_entry(self):
        # An event scheduled *at now* from a callback must not jump
        # ahead of same-time entries still in the active bucket.
        sim = Simulator(bucket_width=1.0)
        fired = []

        def first():
            fired.append("first")
            sim.schedule_at(sim.now, fired.append, "appended",
                            priority=1)

        sim.schedule(0.5, first, priority=0)
        sim.schedule_at(0.5, fired.append, "queued", priority=1)
        sim.run()
        assert fired == ["first", "queued", "appended"]

    def test_pending_spans_active_buckets_and_far(self):
        sim = Simulator(bucket_width=1e-3, span=2)
        sim.schedule(0.0, lambda: None)       # active bucket
        sim.schedule(0.0015, lambda: None)    # future bucket
        keep = sim.schedule(0.5, lambda: None)  # far heap
        assert sim.pending == 3
        keep.cancel()
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0
