"""Property-based end-to-end consistency of the FTL stack.

Drives randomly generated closed-loop streams through each FTL on a
live simulated system and checks the invariants that make an FTL an
FTL, against an oracle (a plain dict of last-write-wins expectations):

* every logical page the host wrote resolves to exactly one physical
  page, and distinct logical pages never share one;
* total valid pages equal the oracle's live page count;
* per-block valid counters are internally consistent;
* the run terminates with all requests completed (no deadlock), with
  the device's program-sequence checker armed the whole time.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.flexftl import FlexFtl
from repro.ftl.pageftl import PageFtl
from repro.ftl.parityftl import ParityFtl
from repro.ftl.rtfftl import RtfFtl
from repro.nand.geometry import NandGeometry
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.queues import RequestKind

from tests.helpers import build_small_system

GEOMETRY = NandGeometry(channels=2, chips_per_channel=2,
                        blocks_per_chip=12, pages_per_block=8,
                        page_size=512)

SPAN = 180  # comfortably below any FTL's logical space on GEOMETRY

operations = st.lists(
    st.tuples(
        st.sampled_from(["read", "write"]),
        st.integers(min_value=0, max_value=SPAN - 4),
        st.integers(min_value=1, max_value=4),
    ),
    min_size=1,
    max_size=120,
)


def to_stream(ops):
    return [
        StreamOp(
            RequestKind.READ if op == "read" else RequestKind.WRITE,
            lpn, npages,
        )
        for op, lpn, npages in ops
    ]


def oracle_state(ops):
    written = set()
    for op, lpn, npages in ops:
        if op == "write":
            written.update(range(lpn, lpn + npages))
    return written


@pytest.mark.parametrize("ftl_cls", [PageFtl, ParityFtl, RtfFtl,
                                     FlexFtl])
class TestFtlConsistency:
    @given(ops=operations)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_mapping_matches_oracle(self, ftl_cls, ops):
        system = build_small_system(ftl_cls, GEOMETRY, buffer_pages=16)
        sim, array, buffer, ftl, controller = system
        host = ClosedLoopHost(sim, controller, [to_stream(ops)])
        host.start()
        sim.run()

        # completion: nothing stuck
        assert host.remaining == 0
        assert buffer.is_empty
        assert controller.stats.completed_requests == len(ops)

        expected_live = oracle_state(ops)
        seen_ppns = set()
        for lpn in range(SPAN):
            ppn = ftl.lookup(lpn)
            if lpn in expected_live:
                assert ppn is not None, f"lpn {lpn} lost"
                assert ppn not in seen_ppns, "two lpns share a ppn"
                seen_ppns.add(ppn)
                assert ftl.mapping.lpn_of(ppn) == lpn
            else:
                assert ppn is None, f"lpn {lpn} spuriously mapped"

        total_valid = sum(
            ftl.mapping.valid_count(gb)
            for gb in range(GEOMETRY.total_blocks)
        )
        assert total_valid == len(expected_live)
