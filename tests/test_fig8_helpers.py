"""Unit tests for Fig8Result post-processing (synthetic inputs)."""

import pytest

from repro.experiments.fig8 import Fig8Result
from repro.experiments.runner import RunResult
from repro.sim.stats import SimStats


def fake_result(iops: float, erases: int, bandwidths=None) -> RunResult:
    stats = SimStats(page_size=4096, bandwidth_window=1.0)
    stats.first_arrival = 0.0
    # one completed request per IOPS unit over one second
    stats.completed_writes = int(iops)
    stats.last_completion = 1.0
    for index, mbps in enumerate(bandwidths or [10.0]):
        stats.write_bandwidth.record(float(index), int(mbps * 1e6))
    return RunResult(
        ftl_name="x", stats=stats,
        counters={"erases": erases, "host_programs": 100,
                  "gc_programs": 10, "backup_programs": 5},
        events=0, logical_pages=1000,
    )


@pytest.fixture
def result():
    runs = {
        "Varmail": {
            "pageFTL": fake_result(100, 10, [10, 20, 40]),
            "parityFTL": fake_result(80, 14, [10, 18, 30]),
            "rtfFTL": fake_result(90, 15, [12, 20, 35]),
            "flexFTL": fake_result(115, 12, [15, 30, 80]),
        },
        "OLTP": {
            "pageFTL": fake_result(200, 20),
            "parityFTL": fake_result(160, 30),
            "rtfFTL": fake_result(165, 32),
            "flexFTL": fake_result(190, 24),
        },
    }
    return Fig8Result(runs=runs, span=1000)


class TestFig8Postprocessing:
    def test_normalized_iops(self, result):
        normalized = result.normalized_iops()
        assert normalized["Varmail"]["pageFTL"] == pytest.approx(1.0)
        assert normalized["Varmail"]["flexFTL"] == pytest.approx(1.15)
        assert normalized["OLTP"]["parityFTL"] == pytest.approx(0.8)

    def test_normalized_erasures(self, result):
        normalized = result.normalized_erasures()
        assert normalized["OLTP"]["parityFTL"] == pytest.approx(1.5)

    def test_zero_erase_baseline_floored(self):
        runs = {"W": {
            "pageFTL": fake_result(10, 0),
            "flexFTL": fake_result(10, 3),
        }}
        normalized = Fig8Result(runs=runs, span=1).normalized_erasures()
        assert normalized["W"]["flexFTL"] == pytest.approx(3.0)

    def test_varmail_cdf_keys(self, result):
        cdf = result.varmail_cdf()
        assert set(cdf) == {"pageFTL", "parityFTL", "rtfFTL",
                            "flexFTL"}
        for points in cdf.values():
            values = [v for _, v in points]
            assert values == sorted(values)

    def test_varmail_peak_ratio(self, result):
        ratio = result.varmail_peak_ratio("flexFTL", "rtfFTL")
        assert ratio == pytest.approx(80 / 35)

    def test_missing_varmail_raises(self):
        fig8 = Fig8Result(runs={"OLTP": {"pageFTL": fake_result(1, 1)}},
                          span=1)
        with pytest.raises(KeyError):
            fig8.varmail_cdf()

    def test_render_includes_average_row(self, result):
        text = result.render()
        assert "Average" in text
        assert "Figure 8(c)" in text

    def test_run_result_properties(self):
        run = fake_result(50, 5)
        assert run.iops == pytest.approx(50.0)
        assert run.erases == 5
        assert run.write_amplification == pytest.approx(1.15)
