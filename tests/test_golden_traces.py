"""Golden-trace regression tests.

Two small, fully deterministic scenarios — a multi-tenant QoS run and
a fault-injection campaign — are traced and serialized to JSONL, then
compared byte-for-byte against checked-in golden files.  Any change
to capture order, field layout, schema version or event timing shows
up as a diff here *before* it silently breaks downstream trace
consumers.

The scenarios deliberately avoid profiling phases: ``profile.phase``
events carry wall-clock durations, which are the one nondeterministic
field in the schema.

Regenerating (after an intentional schema/capture change)::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/test_golden_traces.py

then review the diff and bump ``SCHEMA_VERSION`` if fields changed.
"""

import os
import pathlib

import pytest

from repro.core.flexftl import FlexFtl
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.ftl.pageftl import PageFtl
from repro.nand.geometry import NandGeometry
from repro.observability.tracer import Tracer
from repro.qos.host import MultiTenantHost, TenantSpec
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.queues import RequestKind

from tests.helpers import build_small_system

DATA_DIR = pathlib.Path(__file__).parent / "data"
REGEN = bool(os.environ.get("REPRO_REGEN_GOLDENS"))

GEOMETRY = NandGeometry(channels=2, chips_per_channel=2,
                        blocks_per_chip=12, pages_per_block=8,
                        page_size=512)


def qos_isolation_trace(tmp_path):
    """A two-tenant noisy-neighbor run through the QoS front-end."""
    sim, _, _, _, controller = build_small_system(
        PageFtl, GEOMETRY, buffer_pages=16)
    specs = [
        TenantSpec.make("victim", [
            [StreamOp(RequestKind.WRITE, lpn, 1) for lpn in range(12)]
        ]),
        TenantSpec.make("noisy", [
            [StreamOp(RequestKind.WRITE, lpn, 2)
             for lpn in range(40, 88, 2)]
        ]),
    ]
    host = MultiTenantHost(sim, controller, specs)
    tracer = Tracer().install(controller, qos_host=host)
    host.start()
    sim.run()
    tracer.detach()
    path = tmp_path / "qos_isolation.jsonl"
    tracer.write_jsonl(str(path))
    return path


def fault_campaign_trace(tmp_path):
    """A write burst with two injected program failures."""
    sim, _, _, _, controller = build_small_system(
        FlexFtl, GEOMETRY, buffer_pages=16)
    plan = FaultPlan(events=(
        FaultEvent("program_fail", chip=0, op_index=8),
        FaultEvent("program_fail", chip=1, op_index=12),
    ))
    controller.attach_fault_injector(
        FaultInjector(plan, page_size=GEOMETRY.page_size))
    tracer = Tracer().install(controller)
    host = ClosedLoopHost(sim, controller, [
        [StreamOp(RequestKind.WRITE, lpn, 1) for lpn in range(96)]
        + [StreamOp(RequestKind.READ, lpn, 1) for lpn in range(0, 96, 9)]
    ])
    host.start()
    sim.run()
    tracer.detach()
    path = tmp_path / "fault_campaign.jsonl"
    tracer.write_jsonl(str(path))
    return path


SCENARIOS = {
    "qos_isolation": qos_isolation_trace,
    "fault_campaign": fault_campaign_trace,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_trace_matches_golden(name, tmp_path):
    produced = SCENARIOS[name](tmp_path).read_text()
    golden_path = DATA_DIR / f"golden_trace_{name}.jsonl"
    if REGEN:
        golden_path.write_text(produced)
        pytest.skip(f"regenerated {golden_path.name}")
    assert golden_path.exists(), (
        f"{golden_path} missing — generate it with "
        f"REPRO_REGEN_GOLDENS=1")
    golden = golden_path.read_text()
    assert produced == golden, (
        f"{name} trace deviates from {golden_path.name}; if the "
        f"change is intentional, regenerate with "
        f"REPRO_REGEN_GOLDENS=1 and review the diff")


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_is_deterministic(name, tmp_path):
    (tmp_path / "a").mkdir()
    (tmp_path / "b").mkdir()
    first = SCENARIOS[name](tmp_path / "a").read_text()
    second = SCENARIOS[name](tmp_path / "b").read_text()
    assert first == second


def test_goldens_carry_expected_events():
    """Sanity-pin the golden content so a regen can't silently empty
    the scenarios."""
    qos = (DATA_DIR / "golden_trace_qos_isolation.jsonl").read_text()
    assert qos.count('"ev":"qos.admit"') == 36
    assert '"tenant":"noisy"' in qos and '"tenant":"victim"' in qos
    fault = (DATA_DIR / "golden_trace_fault_campaign.jsonl").read_text()
    assert fault.count('"ev":"fault.inject"') == 2
    assert '"ev":"fault.recover"' in fault
    assert '"ev":"parity.write"' in fault
