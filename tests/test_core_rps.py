"""Tests for repro.core.rps: orders, generators, validators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rps import (
    describe_order,
    fps_order,
    is_valid_order,
    random_rps_order,
    rps_full_order,
    rps_half_order,
    unconstrained_random_order,
    validate_order,
)
from repro.nand.page_types import PageType, page_index
from repro.nand.sequence import SequenceScheme

WORDLINE_COUNTS = [1, 2, 3, 4, 7, 16, 128]


class TestFpsOrder:
    @pytest.mark.parametrize("n", WORDLINE_COUNTS)
    def test_fps_satisfies_all_four_constraints(self, n):
        assert is_valid_order(fps_order(n), n, SequenceScheme.FPS)

    @pytest.mark.parametrize("n", WORDLINE_COUNTS)
    def test_fps_is_also_rps_legal(self, n):
        assert is_valid_order(fps_order(n), n, SequenceScheme.RPS)

    def test_fps_matches_figure_2b(self):
        # Figure 2(b), six word lines: LSB column 0,1,3,5,7,9 and
        # MSB column 2,4,6,8,10,11.
        order = fps_order(6)
        positions = {page: pos for pos, page in enumerate(order)}
        lsb_positions = [positions[page_index(w, PageType.LSB)]
                         for w in range(6)]
        msb_positions = [positions[page_index(w, PageType.MSB)]
                         for w in range(6)]
        assert lsb_positions == [0, 1, 3, 5, 7, 9]
        assert msb_positions == [2, 4, 6, 8, 10, 11]

    def test_single_wordline(self):
        assert fps_order(1) == [0, 1]


class TestRpsOrders:
    @pytest.mark.parametrize("n", WORDLINE_COUNTS)
    def test_rps_full_is_rps_legal(self, n):
        assert is_valid_order(rps_full_order(n), n, SequenceScheme.RPS)

    @pytest.mark.parametrize("n", WORDLINE_COUNTS)
    def test_rps_half_is_rps_legal(self, n):
        assert is_valid_order(rps_half_order(n), n, SequenceScheme.RPS)

    @pytest.mark.parametrize("n", [3, 4, 7, 16])
    def test_rps_full_violates_fps(self, n):
        violations = validate_order(rps_full_order(n), n,
                                    SequenceScheme.FPS)
        assert any("constraint 4" in v for v in violations)

    def test_rps_full_writes_all_lsbs_first(self):
        order = rps_full_order(4)
        assert order[:4] == [page_index(w, PageType.LSB)
                             for w in range(4)]
        assert order[4:] == [page_index(w, PageType.MSB)
                             for w in range(4)]

    def test_rps_half_has_lsb_prefix(self):
        order = rps_half_order(8)
        prefix = order[:4]
        assert prefix == [page_index(w, PageType.LSB) for w in range(4)]

    @pytest.mark.parametrize("seed", range(20))
    def test_random_rps_orders_are_legal(self, seed):
        rng = random.Random(seed)
        order = random_rps_order(16, rng)
        assert is_valid_order(order, 16, SequenceScheme.RPS)

    def test_random_rps_orders_vary(self):
        rng = random.Random(0)
        orders = {tuple(random_rps_order(8, rng)) for _ in range(10)}
        assert len(orders) > 1

    def test_unconstrained_orders_usually_illegal(self):
        rng = random.Random(0)
        illegal = sum(
            not is_valid_order(unconstrained_random_order(16, rng), 16,
                               SequenceScheme.RPS)
            for _ in range(20)
        )
        assert illegal >= 19  # overwhelmingly illegal


class TestValidator:
    def test_wrong_length_reported(self):
        violations = validate_order([0, 1], 4, SequenceScheme.RPS)
        assert any("entries" in v for v in violations)

    def test_duplicate_page_reported(self):
        order = rps_full_order(2)
        order[-1] = order[0]
        violations = validate_order(order, 2, SequenceScheme.RPS)
        assert any("twice" in v for v in violations)

    def test_out_of_range_page_reported(self):
        order = rps_full_order(2)
        order[-1] = 99
        violations = validate_order(order, 2, SequenceScheme.RPS)
        assert any("out of range" in v for v in violations)

    def test_none_scheme_accepts_any_permutation(self):
        rng = random.Random(3)
        order = unconstrained_random_order(8, rng)
        assert is_valid_order(order, 8, SequenceScheme.NONE)

    def test_rejects_non_positive_wordlines(self):
        with pytest.raises(ValueError):
            fps_order(0)
        with pytest.raises(ValueError):
            validate_order([], 0, SequenceScheme.RPS)


class TestDescribe:
    def test_describe_order(self):
        assert describe_order([0, 2, 1]) == "LSB(0) LSB(1) MSB(0)"


class TestRpsProperties:
    @given(st.integers(min_value=1, max_value=64), st.integers())
    @settings(max_examples=60, deadline=None)
    def test_random_rps_always_legal(self, n, seed):
        rng = random.Random(seed)
        order = random_rps_order(n, rng)
        assert is_valid_order(order, n, SequenceScheme.RPS)

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_generators_cover_every_page_once(self, n):
        for generator in (fps_order, rps_full_order, rps_half_order):
            order = generator(n)
            assert sorted(order) == list(range(2 * n))

    @given(st.integers(min_value=1, max_value=48), st.integers())
    @settings(max_examples=40, deadline=None)
    def test_fps_legal_implies_rps_legal(self, n, seed):
        # FPS's constraint set is a superset: any FPS-legal order must
        # also be RPS-legal.  Exercise with the canonical FPS order and
        # random RPS orders that happen to be FPS-legal.
        rng = random.Random(seed)
        for order in (fps_order(n), random_rps_order(n, rng)):
            if is_valid_order(order, n, SequenceScheme.FPS):
                assert is_valid_order(order, n, SequenceScheme.RPS)
