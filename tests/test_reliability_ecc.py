"""Tests for the ECC capability model and the endurance sweep."""

import pytest

from repro.experiments.endurance import run_endurance_sweep
from repro.reliability.ecc import (
    EccConfig,
    codeword_failure_probability,
    max_tolerable_ber,
    page_failure_probability,
)


class TestEccModel:
    def test_zero_ber_never_fails(self):
        assert codeword_failure_probability(0.0) == 0.0
        assert page_failure_probability(0.0) == 0.0

    def test_monotonic_in_ber(self):
        bers = [1e-5, 1e-4, 1e-3, 1e-2]
        probabilities = [codeword_failure_probability(b) for b in bers]
        assert probabilities == sorted(probabilities)

    def test_stronger_code_fails_less(self):
        weak = EccConfig(correctable_bits=8)
        strong = EccConfig(correctable_bits=72)
        ber = 2e-3
        assert codeword_failure_probability(ber, strong) < \
            codeword_failure_probability(ber, weak)

    def test_typical_operating_point_is_safe(self):
        # 40 bits / 1 KB against the Fig. 4(b) median (~4e-4): the
        # expected 3.3 errors per codeword are deep inside the margin.
        assert codeword_failure_probability(4e-4) < 1e-15

    def test_overwhelmed_code_fails(self):
        # 1% raw BER = ~82 errors per 1-KB codeword >> 40 correctable.
        assert codeword_failure_probability(1e-2) > 0.99

    def test_page_failure_aggregates_codewords(self):
        ber = 3e-3
        per_codeword = codeword_failure_probability(ber)
        per_page = page_failure_probability(ber, page_size=4096)
        assert per_page >= per_codeword  # 4 codewords per page
        assert per_page <= 4 * per_codeword + 1e-12

    def test_max_tolerable_ber_is_consistent(self):
        limit = max_tolerable_ber(target_page_failure=1e-9)
        assert 1e-4 < limit < 1e-2
        assert page_failure_probability(limit) <= 1e-9
        assert page_failure_probability(limit * 1.5) > 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            EccConfig(codeword_bytes=0)
        with pytest.raises(ValueError):
            EccConfig(correctable_bits=-1)
        with pytest.raises(ValueError):
            codeword_failure_probability(1.5)
        with pytest.raises(ValueError):
            page_failure_probability(1e-3, page_size=0)
        with pytest.raises(ValueError):
            max_tolerable_ber(target_page_failure=0.0)


class TestEnduranceSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_endurance_sweep(blocks=4, wordlines=12,
                                   cycles=(0, 2000, 4000), seed=9)

    def test_rps_tracks_fps_exactly(self, sweep):
        assert sweep.median_ber["RPSfull"] == sweep.median_ber["FPS"]
        assert sweep.endurance["RPSfull"] == sweep.endurance["FPS"]

    def test_unconstrained_is_worse(self, sweep):
        fps = sweep.endurance["FPS"]
        unconstrained = sweep.endurance["unconstrained"]
        assert fps is not None
        assert unconstrained is None or unconstrained <= fps
        assert sweep.median_ber["unconstrained"][-1] > \
            sweep.median_ber["FPS"][-1]

    def test_render_lists_cycles(self, sweep):
        text = sweep.render()
        assert "4000" in text
        assert "FPS" in text
