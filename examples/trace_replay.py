#!/usr/bin/env python3
"""Replay an externally captured block trace (open-loop).

The Table 1 emulators are closed-loop; this example shows the other
evaluation mode: open-loop replay of a timestamped block trace — here
a synthetic MSR-Cambridge-style capture written to a temp file, parsed
with :func:`repro.workloads.external.load_msr_trace`, fitted to the
simulated device, and replayed against pageFTL and flexFTL.

Usage::

    python examples/trace_replay.py [path/to/trace.csv]
"""

import random
import sys
import tempfile
from pathlib import Path

from repro.experiments import ExperimentConfig, build_system
from repro.metrics.report import render_table
from repro.sim.host import run_trace
from repro.workloads.external import fit_trace, load_msr_trace


def synthesize_msr_csv(path: Path, records: int = 4000,
                       seed: int = 7) -> None:
    """Write a small synthetic MSR-Cambridge-style capture."""
    rng = random.Random(seed)
    ticks = 0
    lines = []
    for _ in range(records):
        # bursty arrivals: mostly sub-ms gaps, occasional long idles
        ticks += rng.choice([2_000, 5_000, 10_000, 2_000_000])
        op = "Write" if rng.random() < 0.6 else "Read"
        offset = rng.randrange(0, 2 ** 30, 512)
        size = rng.choice([4096, 8192, 16384, 65536])
        lines.append(f"{ticks},host0,0,{op},{offset},{size},0")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def main() -> None:
    if len(sys.argv) > 1:
        trace_path = Path(sys.argv[1])
    else:
        trace_path = Path(tempfile.mkdtemp()) / "synthetic_msr.csv"
        synthesize_msr_csv(trace_path)
        print(f"no trace given; synthesised one at {trace_path}")

    raw = load_msr_trace(trace_path)
    print(f"loaded {len(raw)} requests spanning "
          f"{raw[-1].time - raw[0].time:.2f} s")

    config = ExperimentConfig()
    rows = []
    for ftl_name in ("pageFTL", "flexFTL"):
        sim, array, buffer, ftl, controller = build_system(ftl_name,
                                                           config)
        fitted = fit_trace(raw, ftl.logical_pages)
        stats = run_trace(sim, controller, fitted)
        rows.append([
            ftl_name,
            stats.completed_requests,
            f"{stats.iops():.0f}",
            array.total_erases,
            f"{stats.write_bandwidth.percentile(1.0):.1f}",
        ])
    print()
    print(render_table(
        ["FTL", "requests", "IOPS", "erases", "peak BW [MB/s]"], rows))


if __name__ == "__main__":
    main()
