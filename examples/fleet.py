#!/usr/bin/env python3
"""Fleet serving drill: serve -> checkpoint -> kill -> resume.

Serves a small tenanted fleet three ways and proves the checkpoint
backbone end to end:

1. an uninterrupted oracle pass;
2. the same fleet stopped mid-run (every device checkpoints to a
   versioned snapshot file and the process "dies");
3. a resume pass that loads the snapshots and finishes the work.

The resumed report's fleet fingerprint — a SHA-256 over every device's
measured trace surface — is asserted equal to the oracle's: the kill
changed nothing, byte for byte.  Also peeks inside a snapshot header
and shows the kernel-mismatch refusal.

Usage::

    python examples/fleet.py
"""

import tempfile
from pathlib import Path

from repro.fleet import (
    DeviceRun,
    FleetSpec,
    SnapshotMismatchError,
    fleet_config,
    run_fleet,
)


def main() -> None:
    fleet = FleetSpec(devices=16, tenants=2, ops_per_device=200,
                      seed=7)

    print("== 1. uninterrupted oracle pass (2 workers)")
    oracle = run_fleet(fleet, jobs=2)
    print(oracle.render())
    print()

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = Path(tmp) / "ckpt"

        print("== 2. same fleet, stopped after 500 events per device")
        stopped = run_fleet(fleet, jobs=2, checkpoint_dir=str(ckpt),
                            stop_after_events=500)
        print(stopped.render())
        snaps = sorted(ckpt.glob("*.snap"))
        print(f"   {len(snaps)} snapshot files in {ckpt.name}/")

        header = DeviceRun.peek(snaps[0])
        print(f"   {snaps[0].name}: kernel={header['kernel']} "
              f"stepping={header['stepping']} "
              f"events={header['events']} "
              f"sha256={header['payload_sha256'][:12]}…")
        print()

        print("== 3. resume from the snapshots and finish")
        resumed = run_fleet(fleet, jobs=2, checkpoint_dir=str(ckpt),
                            resume=True)
        print(resumed.render())
        print()

        same = (resumed.report.fingerprint()
                == oracle.report.fingerprint())
        print(f"resumed fingerprint == oracle fingerprint: {same}")
        assert same, "kill/resume diverged from the oracle"

        print()
        print("== 4. a heap-kernel config refuses a calendar snapshot")
        stopped2 = run_fleet(fleet, jobs=1, checkpoint_dir=str(ckpt),
                             stop_after_events=500)
        assert stopped2.checkpoints > 0
        snap = sorted(ckpt.glob("*.snap"))[0]
        try:
            DeviceRun.load(snap,
                           expect_config=fleet_config(kernel="heap"))
        except SnapshotMismatchError as error:
            print(f"   refused as expected: {error}")
        else:
            raise AssertionError("mismatched kernel resume not caught")


if __name__ == "__main__":
    main()
