#!/usr/bin/env python3
"""Demonstrate flexFTL's per-block parity backup surviving power loss.

Walks the full Section 3.3 story on a data-bearing NAND model:

1. fill a block's LSB pages (2PO fast phase) while accumulating the
   XOR parity page, and persist the parity to a backup block;
2. start the MSB (slow) phase, then cut power mid-MSB-program —
   destroying the paired LSB page's data;
3. reboot: re-read the slow block's LSB pages, detect the
   ECC-uncorrectable page, and reconstruct it from the saved parity.

Usage::

    python examples/power_loss_recovery.py
"""

from repro.core.parity_backup import estimate_reboot_read_overhead
from repro.experiments.recovery import run_spo_recovery


def main() -> None:
    wordlines = 64  # 128-page block, half LSB
    scenario = run_spo_recovery(wordlines=wordlines, page_size=4096,
                                msb_written_before_loss=21, seed=2026)

    print(f"block layout: {wordlines} word lines "
          f"({2 * wordlines} pages)")
    print(f"fast phase: wrote {wordlines} LSB pages + 1 parity page")
    print(f"slow phase: wrote {scenario.msb_written_before_loss} MSB "
          f"pages, then POWER LOSS during MSB("
          f"{scenario.lost_wordline})")
    print()
    report = scenario.report
    print(f"reboot recovery: read {report.lsb_reads} LSB pages, "
          f"found {len(report.lost_wordlines)} lost")
    print(f"lost word line:      {report.recovered_wordline}")
    print(f"reconstructed bytes match original: "
          f"{scenario.recovered_matches}")
    print(f"recovery successful: {scenario.success}")
    print()
    overhead = estimate_reboot_read_overhead(
        chips=16, active_blocks_per_chip=2,
        lsb_pages_per_block=wordlines)
    print(f"paper's reboot-overhead estimate for 16 chips: "
          f"{overhead * 1e3:.2f} ms (Section 3.3: 81.92 ms)")


if __name__ == "__main__":
    main()
