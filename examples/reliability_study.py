#!/usr/bin/env python3
"""Reliability study: why RPS is safe and Constraint 4 is unnecessary.

Reproduces the Figure 4 experiment at a reduced population and prints
three views:

* per-word-line aggressor counts for each program order (the quantity
  cell-to-cell interference is proportional to);
* the WPi (Vth width) distributions of Figure 4(a);
* the worst-case BER distributions of Figure 4(b).

Usage::

    python examples/reliability_study.py
"""

import random

from repro.core.rps import (
    fps_order,
    random_rps_order,
    rps_full_order,
    rps_half_order,
    unconstrained_random_order,
)
from repro.experiments.fig4 import run_fig4
from repro.reliability.interference import aggressor_counts

WORDLINES = 32


def aggressor_summary() -> None:
    rng = random.Random(7)
    orders = {
        "FPS": fps_order(WORDLINES),
        "RPSfull": rps_full_order(WORDLINES),
        "RPShalf": rps_half_order(WORDLINES),
        "RPSrandom": random_rps_order(WORDLINES, rng),
        "unconstrained": unconstrained_random_order(WORDLINES, rng),
    }
    print("aggressor programs per word line (max / mean):")
    for name, order in orders.items():
        counts = aggressor_counts(order, WORDLINES)
        mean = sum(counts) / len(counts)
        print(f"  {name:14s} max={max(counts)}  mean={mean:.2f}")
    print()


def main() -> None:
    aggressor_summary()
    result = run_fig4(blocks=30, wordlines=WORDLINES, seed=5)
    print(result.render())


if __name__ == "__main__":
    main()
