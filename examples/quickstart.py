#!/usr/bin/env python3
"""Quickstart: simulate flexFTL on a bursty workload.

Builds a scaled NAND storage system, preconditions it, replays a
Varmail-like closed-loop workload against flexFTL, and prints the
headline metrics.  Runs in a few seconds.

Usage::

    python examples/quickstart.py
"""

from repro.experiments import (
    ExperimentConfig,
    experiment_span,
    run_workload,
)
from repro.metrics.lifetime import erasure_summary
from repro.scenarios import make_preset


def main() -> None:
    config = ExperimentConfig()
    geometry = config.geometry
    print(f"device: {geometry.channels} channels x "
          f"{geometry.chips_per_channel} chips, "
          f"{geometry.blocks_per_chip} blocks/chip, "
          f"{geometry.pages_per_block} pages/block "
          f"({geometry.capacity_bytes / 2**20:.0f} MiB raw)")

    span = experiment_span(config, utilization=0.7)
    scenario = make_preset("varmail", span, 6000, seed=42)
    print(f"workload: {scenario.describe()}")
    print()
    print(scenario.phase_table())

    result = run_workload(ftl_name="flexFTL", scenario=scenario,
                          config=config)
    lifetime = erasure_summary(result.counters)
    bandwidth = result.stats.write_bandwidth

    print()
    print(f"IOPS:                 {result.iops:10.1f}")
    print(f"block erasures:       {result.erases:10d}")
    print(f"write amplification:  "
          f"{lifetime['write_amplification']:10.3f}")
    print(f"backup overhead:      {lifetime['backup_overhead']:10.3f} "
          f"extra writes per host write")
    print(f"peak write bandwidth: "
          f"{bandwidth.percentile(1.0):10.1f} MB/s")
    print(f"final LSB quota q:    {result.counters['quota']:10d}")


if __name__ == "__main__":
    main()
