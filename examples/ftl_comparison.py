#!/usr/bin/env python3
"""Compare the four FTLs on one workload (a slice of Figure 8).

Runs pageFTL, parityFTL, rtfFTL and flexFTL on the same generated
workload — fanned out across processes by the experiment engine — and
prints raw + normalised IOPS, erasures and peak write bandwidth — the
per-workload column of Figures 8(a) and 8(b).

Usage::

    python examples/ftl_comparison.py [workload]

where ``workload`` is one of OLTP, NTRX, Webserver, Varmail,
Fileserver (default: Fileserver).
"""

import sys

from repro.experiments import (
    EngineOptions,
    ExperimentConfig,
    experiment_span,
    run_cells,
    workload_cell,
)
from repro.experiments.fig8 import FTLS
from repro.metrics.report import render_table
from repro.workloads import PROFILES, build_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "Fileserver"
    if workload not in PROFILES:
        raise SystemExit(
            f"unknown workload {workload!r}; choose from "
            f"{sorted(PROFILES)}"
        )
    config = ExperimentConfig()
    span = experiment_span(config, utilization=0.75)
    streams = build_workload(workload, span, total_ops=12000, seed=1)
    profile = PROFILES[workload]
    print(f"workload: {workload} (R:W {profile.read_write_ratio}, "
          f"{profile.intensiveness} intensity)")

    print(f"  running {', '.join(FTLS)} in parallel ...")
    cells = [workload_cell(ftl, streams, config, label=ftl)
             for ftl in FTLS]
    outcomes = run_cells(cells, options=EngineOptions(jobs=4),
                         label="ftl_comparison")
    results = dict(zip(FTLS, outcomes))

    base = results["pageFTL"]
    rows = []
    for ftl in FTLS:
        result = results[ftl]
        peak = result.stats.write_bandwidth.percentile(1.0)
        rows.append([
            ftl,
            f"{result.iops:.0f}",
            f"{result.iops / base.iops:.2f}",
            result.erases,
            f"{result.write_amplification:.2f}",
            f"{peak:.1f}",
        ])
    print()
    print(render_table(
        ["FTL", "IOPS", "vs pageFTL", "erases", "WAF",
         "peak BW [MB/s]"], rows))


if __name__ == "__main__":
    main()
