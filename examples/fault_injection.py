#!/usr/bin/env python3
"""Runtime fault injection: seeded campaign + graceful degradation.

Part 1 runs a small seeded fault campaign — the same workload under
rising program-failure rates on pageFTL (no backup) and flexFTL, whose
Section 3.3 parity pages double as runtime program-failure protection
— and prints the recovery/data-loss table.  The campaign is exactly
reproducible: rerun with the same seed and every fault strikes the
same operation.

Part 2 drives a device with a tiny spare-block reserve into spare
exhaustion and shows the graceful-degradation contract: the device
flips to read-only, writes fail with a typed error, reads keep
working.

Usage::

    python examples/fault_injection.py [seed]
"""

import sys

from repro.experiments.fault_campaign import (
    render_fault_campaign,
    run_fault_campaign,
)
from repro.faults import FaultInjector, FaultPlan
from repro.ftl.base import FtlConfig
from repro.ftl.pageftl import PageFtl
from repro.nand.array import NandArray
from repro.nand.errors import ReadOnlyDeviceError
from repro.nand.geometry import NandGeometry
from repro.nand.sequence import SequenceScheme
from repro.sim.controller import StorageController
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.kernel import Simulator
from repro.sim.queues import (
    REQUEST_FAILED,
    Request,
    RequestKind,
    WriteBuffer,
)
from repro.sim.stats import SimStats


def seeded_campaign(seed: int) -> None:
    campaign = run_fault_campaign(
        rates=(0.0, 0.005), total_ops=2000, seed=seed, cuts=1)
    print(f"fault campaign (seed {seed}):")
    print(render_fault_campaign(campaign))


def degraded_mode_demo() -> None:
    geometry = NandGeometry(channels=2, chips_per_channel=2,
                            blocks_per_chip=16, pages_per_block=16,
                            page_size=512)
    sim = Simulator()
    array = NandArray(geometry, scheme=SequenceScheme.FPS)
    buffer = WriteBuffer(16)
    # One spare per chip: the second retirement on a chip exhausts it.
    ftl = PageFtl(array, buffer,
                  FtlConfig(spare_blocks_per_chip=1,
                            bg_gc_enabled=False))
    controller = StorageController(sim, array, ftl, buffer,
                                   SimStats(page_size=512))
    # Fail every ~25th program: retirements pile up fast.
    controller.attach_fault_injector(
        FaultInjector(FaultPlan(seed=7, program_fail_rate=0.04),
                      page_size=geometry.page_size))
    host = ClosedLoopHost(sim, controller, [
        [StreamOp(RequestKind.WRITE, (3 * i) % 300, 1)
         for i in range(2000)]
    ])
    host.start()
    sim.run()

    faults = controller.stats.faults
    print("degraded-mode transition:")
    print(f"  program failures: {faults.program_failures}, "
          f"blocks retired: {faults.retired_blocks}, "
          f"spares consumed: {faults.spares_consumed}")
    print(f"  read-only: {controller.read_only}, "
          f"writes rejected in-run: {faults.writes_rejected}")

    write = Request(sim.now, RequestKind.WRITE, 0, 1)
    controller.submit(write)
    sim.run()
    assert write.status == REQUEST_FAILED
    assert isinstance(write.error, ReadOnlyDeviceError)
    print(f"  post-degrade write: {write.status!r} ({write.error})")

    lpn = next(lpn for lpn in range(300)
               if ftl.mapping.lookup(lpn) is not None)
    read = Request(sim.now, RequestKind.READ, lpn, 1)
    controller.submit(read)
    sim.run()
    print(f"  post-degrade read of lpn {lpn}: {read.status!r} "
          f"(data stays readable)")


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    seeded_campaign(seed)
    print()
    degraded_mode_demo()


if __name__ == "__main__":
    main()
