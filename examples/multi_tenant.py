#!/usr/bin/env python3
"""Multi-tenant QoS quickstart: a noisy neighbor, four arbiters.

Runs the noisy-neighbor scenario — a latency-sensitive victim tenant
sharing a flexFTL device with a tenant blasting multi-page write
bursts — once per arbitration policy, and prints the victim's tail
latency under each.  Shows how weighted arbitration restores isolation
that a single shared queue (the ``fifo`` baseline) cannot provide.

Usage::

    python examples/multi_tenant.py
"""

from repro.experiments.qos_isolation import build_noisy_neighbor
from repro.experiments.runner import ExperimentConfig, experiment_span
from repro.metrics.report import render_table
from repro.qos import run_qos_workload


def main() -> None:
    config = ExperimentConfig()
    span = experiment_span(config, utilization=0.7)
    tenants = build_noisy_neighbor(span, total_ops=1600, seed=42)
    for spec in tenants:
        print(f"tenant {spec.name!r}: {spec.total_ops} ops over "
              f"{len(spec.streams)} streams, weight {spec.weight:g}")
    print()

    rows = []
    for arbiter in ("fifo", "rr", "wrr", "drr"):
        result = run_qos_workload(ftl_name="flexFTL", tenants=tenants,
                                  arbiter=arbiter, config=config,
                                  max_outstanding=8)
        victim = result.tenant("victim")
        rows.append([
            arbiter,
            f"{result.write_p99('victim') * 1e3:.3f}",
            f"{float(victim['read_latency']['p99']) * 1e3:.3f}",
            str(int(victim["read_violations"])
                + int(victim["write_violations"])),
            f"{float(victim['queue']['mean_depth']):.2f}",
            f"{float(result.totals['iops']):.0f}",
        ])

    print(render_table(
        ["arbiter", "victim wp99 [ms]", "victim rp99 [ms]",
         "victim SLO viol", "victim qdepth", "total IOPS"],
        rows,
    ))
    print()
    print("fifo is what one shared queue does: the victim's commands "
          "wait behind\nthe noisy tenant's bursts.  wrr/drr serve the "
          "victim's queue out of\narrival order and cut its p99 tail.")


if __name__ == "__main__":
    main()
