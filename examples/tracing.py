#!/usr/bin/env python3
"""Structured tracing: capture a run, digest it, drill into events.

Runs one flexFTL workload with a :class:`Tracer` armed, writes the
JSONL trace, prints the same digest ``repro trace summary`` renders,
then demonstrates the three things a trace answers that aggregate
statistics cannot:

1. *when* — per-phase op counts and timings;
2. *why* — each host page's allocation decision with the buffer
   occupancy ``u`` and LSB quota ``q`` the policy saw;
3. *what exactly* — the raw event stream around any moment of
   interest (here: the first garbage collection).

Usage::

    python examples/tracing.py [trace.jsonl]
"""

import sys

from repro.experiments.runner import ExperimentConfig, run_workload
from repro.nand.geometry import NandGeometry
from repro.observability import events as ev
from repro.observability.summary import summarize_tracer
from repro.observability.tracer import Tracer
from repro.scenarios import StreamScenario
from repro.sim.host import StreamOp
from repro.sim.queues import RequestKind


def churny_stream(span, rounds=6):
    """A fill plus overwrite rounds — enough churn to trigger GC."""
    ops = [StreamOp(RequestKind.WRITE, lpn, 1) for lpn in range(span)]
    for _ in range(rounds):
        ops.extend(StreamOp(RequestKind.WRITE, lpn, 1)
                   for lpn in range(span))
    return ops


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "trace.jsonl"
    config = ExperimentConfig(
        geometry=NandGeometry(channels=2, chips_per_channel=2,
                              blocks_per_chip=24, pages_per_block=16,
                              page_size=2048),
        buffer_pages=32,
        track_history=False,
    )

    tracer = Tracer()
    result = run_workload(
        ftl_name="flexFTL",
        scenario=StreamScenario.from_streams(
            [churny_stream(span=500)], name="churn"),
        config=config,
        tracer=tracer,
    )

    lines = tracer.write_jsonl(out_path)
    print(f"wrote {lines} events to {out_path}")
    print(f"(inspect any trace with: python -m repro trace summary "
          f"{out_path})\n")

    # 1. the digest -- identical to `repro trace summary`
    summary = summarize_tracer(tracer)
    print(summary.render())

    # 2. allocation decisions: what did the 2PO policy see?
    allocs = [event for event in tracer.events()
              if event.kind == ev.ALLOC_DECISION
              and event.fields["phase"] == "measured"]
    lsb = sum(1 for a in allocs if a.fields["ptype"] == 0)
    print(f"\nmeasured-phase allocations: {len(allocs)} "
          f"({lsb} LSB / {len(allocs) - lsb} MSB)")
    for alloc in allocs[:5]:
        fields = alloc.fields
        print(f"  t={alloc.time:.6f}s chip {fields['chip']} "
              f"block {fields['block']:>3} page {fields['page']:>2} "
              f"{'LSB' if fields['ptype'] == 0 else 'MSB'} "
              f"u={fields['u_pages']:>2} q={fields['q']}")

    # 3. zoom into the first garbage collection
    gc_events = [event for event in tracer.events()
                 if event.kind == ev.GC_VICTIM]
    if gc_events:
        first = gc_events[0]
        print(f"\nfirst GC at t={first.time:.6f}s: chip "
              f"{first.fields['chip']} victim block "
              f"{first.fields['block']} with {first.fields['valid']} "
              f"live pages")
        window = [event for event in tracer.events()
                  if first.time <= event.time <= first.time + 0.002
                  and event.kind == ev.OP_ISSUE
                  and event.fields["tag"] == "gc"]
        print(f"gc-tagged ops in the following 2 ms: {len(window)}")

    # the metrics registry snapshot rode along on the run result
    metrics = result.stats.metrics
    print(f"\nmetrics: {metrics.counter_total('gc.collections')} GC "
          f"collections, {metrics.counter_total('parity.writes')} "
          f"parity writes "
          f"(serialized under stats['metrics'] in RunResult files)")


if __name__ == "__main__":
    main()
