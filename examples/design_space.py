#!/usr/bin/env python3
"""Design-space exploration: buffer capacity x LSB quota.

Sweeps the two knobs that shape flexFTL's burst behaviour — the write
buffer (the policy manager's sensor) and the initial quota (its
budget) — on the Varmail workload, and prints the resulting
IOPS/peak-bandwidth/lifetime grid.

Usage::

    python examples/design_space.py
"""

import dataclasses

from repro.experiments import ExperimentConfig
from repro.experiments.sweep import render_sweep, run_sweep


def build(params):
    base = ExperimentConfig()
    return dataclasses.replace(
        base,
        buffer_pages=int(params["buffer_pages"]),
        policy_config=dataclasses.replace(
            base.policy_config,
            quota_fraction=float(params["quota_fraction"]),
        ),
    )


def main() -> None:
    rows = run_sweep(
        axes={
            "buffer_pages": (128, 256, 512),
            "quota_fraction": (0.025, 0.05, 0.1),
        },
        config_builder=build,
        ftl="flexFTL",
        workload="Varmail",
        total_ops=8000,
        seed=3,
    )
    print("flexFTL on Varmail — buffer capacity x initial quota:")
    print(render_sweep(rows))
    best = max(rows, key=lambda row: row.cell("iops"))
    print()
    print(f"best IOPS: {best.cell('iops'):.0f} at {best.params} "
          f"(paper operating point: buffer 256, quota 5%)")


if __name__ == "__main__":
    main()
