#!/usr/bin/env python3
"""TLC study: the RPS idea one bit deeper.

Walks the paper's Section 1 claim ("applicable for other NAND devices
such as TLC") through three levels:

1. orders — the TLC constraint sets and the <=1-aggressor property;
2. burst service — one enforcing chip, staggered vs three-phase;
3. full system — TlcFlexFtl vs TlcPageFtl through the discrete-event
   controller on a bursty workload.

Usage::

    python examples/tlc_study.py
"""

import random

from repro.experiments.tlc_burst import (
    render_tlc_burst,
    run_tlc_burst_experiment,
)
from repro.experiments.tlc_system import (
    render_tlc_comparison,
    run_tlc_system_comparison,
)
from repro.metrics.report import render_table
from repro.nand.tlc import (
    TlcScheme,
    fps_tlc_order,
    is_valid_tlc_order,
    random_rps_tlc_order,
    rps_tlc_full_order,
    tlc_max_aggressors,
    unconstrained_tlc_order,
)

WORDLINES = 64


def order_level() -> None:
    rng = random.Random(11)
    orders = {
        "FPS-TLC (staggered)": fps_tlc_order(WORDLINES),
        "RPS-TLC (three-phase)": rps_tlc_full_order(WORDLINES),
        "RPS-TLC (random)": random_rps_tlc_order(WORDLINES, rng),
        "unconstrained": unconstrained_tlc_order(WORDLINES, rng),
    }
    rows = [[name, tlc_max_aggressors(order, WORDLINES),
             "yes" if is_valid_tlc_order(order, WORDLINES,
                                         TlcScheme.RPS) else "no"]
            for name, order in orders.items()]
    print("1) program orders "
          f"({WORDLINES} word lines, {3 * WORDLINES} pages):")
    print(render_table(["order", "max aggressors", "RPS-TLC legal"],
                       rows))
    print()


def burst_level() -> None:
    print("2) burst service on one enforcing chip:")
    print(render_tlc_burst(run_tlc_burst_experiment(WORDLINES, 48)))
    print()


def system_level() -> None:
    print("3) full storage system (DES controller, Varmail bursts):")
    results = run_tlc_system_comparison(total_ops=6000, seed=2)
    print(render_tlc_comparison(results))


def main() -> None:
    order_level()
    burst_level()
    system_level()


if __name__ == "__main__":
    main()
