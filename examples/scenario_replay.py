#!/usr/bin/env python3
"""Scenario round trip: generate, export to CSV, replay from disk.

Walks the whole Scenario API in one script:

1. build a phase-structured Table-1 preset (``fileserver``);
2. run it directly against flexFTL;
3. export its op sequence as an ``operation_sequence`` CSV;
4. replay the file back through a :class:`TraceScenario` — streamed
   off disk in bounded memory — and show the results are identical.

Usage::

    python examples/scenario_replay.py [scenario.csv]

When a path is given, the CSV is written there (and kept) instead of a
temp file, so you can inspect it or replay it later with
``python -m repro scenario --replay scenario.csv``.
"""

import json
import sys
import tempfile
from pathlib import Path

from repro.experiments import (
    ExperimentConfig,
    experiment_span,
    run_workload,
)
from repro.scenarios import TraceScenario, make_preset, write_scenario_csv


def main() -> None:
    config = ExperimentConfig()
    span = experiment_span(config, utilization=0.7)
    scenario = make_preset("fileserver", span, total_ops=4000, seed=11)
    print(f"scenario: {scenario.describe()}")
    print()
    print(scenario.phase_table())
    print()

    direct = run_workload(ftl_name="flexFTL", scenario=scenario,
                          config=config)
    print(f"direct run:   {direct.iops:8.1f} IOPS, "
          f"{direct.erases} erases, "
          f"WA {direct.write_amplification:.3f}")

    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        path = Path(tempfile.mkdtemp()) / "operation_sequence.csv"
    rows = write_scenario_csv(scenario, path)
    print(f"exported {rows} ops to {path}")

    replayed = run_workload(ftl_name="flexFTL",
                            scenario=TraceScenario(path),
                            config=config)
    print(f"replayed run: {replayed.iops:8.1f} IOPS, "
          f"{replayed.erases} erases, "
          f"WA {replayed.write_amplification:.3f}")

    same = (json.dumps(direct.to_dict(), sort_keys=True)
            == json.dumps(replayed.to_dict(), sort_keys=True))
    print(f"byte-identical results: {same}")


if __name__ == "__main__":
    main()
