#!/usr/bin/env python3
"""Physics-grounded runtime errors: emergent BER and the retry ladder.

Part 1 runs a small ``lifetime_physics`` grid — the same workload on
pageFTL (FPS order) and flexFTL (RPS order) with the physics error
engine armed at increasing P/E wear — and prints the grid table.  At
matched stress the RPS-ordered FTL shows lower cumulative BER and no
earlier ECC-failure onset, because its pages absorb fewer
post-finalisation aggressor programs: the paper's Figure-4 lifetime
argument, emergent from the live system.

Part 2 arms one heavily worn run directly through
``run_physics_workload`` and unpacks the voltage-shift read-retry
ladder's activity: errors sampled, shift-rung recoveries, escalated-ECC
recoveries, and pages the whole ladder lost.

Both parts are exactly reproducible: the engine draws from one seeded
RNG stream in completion order, so reruns (and parallel or cached
reruns) match byte for byte.

Usage::

    python examples/lifetime_physics.py [seed]
"""

import sys

from repro.experiments.lifetime_physics import (
    render_lifetime_physics,
    run_lifetime_physics,
)
from repro.reliability import PhysicsConfig
from repro.reliability.runner import run_physics_workload
from repro.scenarios.presets import make_preset


def lifetime_grid(seed: int) -> None:
    outcome = run_lifetime_physics(
        ftls=("pageFTL", "flexFTL"),
        pe_cycles=(0, 3000, 6000),
        retention_hours=(8760.0,),      # one year on the shelf
        total_ops=1500,
        seed=seed,
    )
    print(f"lifetime physics grid (seed {seed}):")
    print(render_lifetime_physics(outcome))


def ladder_walkthrough(seed: int) -> None:
    scenario = make_preset("cold_aging", footprint=1200,
                           total_ops=1500, seed=seed)
    result = run_physics_workload(
        ftl_name="flexFTL",
        scenario=scenario,
        physics=PhysicsConfig(
            seed=seed,
            pe_baseline=6000,           # end-of-life wear
            retention_baseline_hours=8760.0,
        ),
    )
    physics = result.physics
    print("worn-device ladder activity (flexFTL, pe=6000, ret=1y):")
    print(f"  reads sampled        {physics['reads_sampled']}")
    print(f"  mean raw BER         {physics['mean_ber']:.2e}"
          f"  (max {physics['max_ber']:.2e})")
    print(f"  baseline ECC misses  {physics['read_errors']}")
    print(f"  shift retries        {physics['shift_retries']}"
          f"  -> recovered {physics['shift_recoveries']}")
    print(f"  ECC escalations      {physics['ecc_escalations']}"
          f"  -> recovered {physics['ecc_recoveries']}")
    print(f"  uncorrectable        {physics['uncorrectable']}")
    faults = result.run.stats.faults
    if faults is not None:
        print(f"  ladder reads charged {faults.ladder_reads}"
              f"  (itemised into read latency)")
        print(f"  parity rebuilds      {faults.parity_reconstructions}"
              f"  lost pages {faults.lost_pages}")
    first = result.first_uncorrectable_read
    onset = "none" if first is None else f"sampled read #{first}"
    print(f"  first ECC failure    {onset}")


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    lifetime_grid(seed)
    print()
    ladder_walkthrough(seed)


if __name__ == "__main__":
    main()
