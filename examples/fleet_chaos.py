#!/usr/bin/env python3
"""Supervised fleet serving under a deterministic chaos plan.

Drills the fleet supervisor end to end:

1. an uninterrupted oracle pass (no supervision needed);
2. the same fleet under `--supervise` semantics with a chaos plan
   that SIGKILLs one worker mid-run and hangs another — the
   supervisor detects both (dead process / heartbeat silence), kills
   the hung worker, and retries each shard from its latest
   checkpoints with seeded backoff;
3. a poison-device pass: one device crashes on every attempt, burns
   through its retry budget, and is quarantined — the fleet degrades
   to 15 of 16 devices instead of dying.

The recovery oracle is asserted along the way: the chaos run's fleet
fingerprint equals the undisturbed run's, byte for byte, and the
degraded run's fingerprint equals the oracle's surviving subset.

Usage::

    python examples/fleet_chaos.py
"""

import tempfile
from pathlib import Path

from repro.fleet import (
    ChaosEvent,
    ChaosPlan,
    FleetReport,
    FleetSpec,
    SupervisionPolicy,
    poison_device,
    run_fleet,
)


def main() -> None:
    fleet = FleetSpec(devices=16, tenants=2, ops_per_device=200,
                      seed=7)
    policy = SupervisionPolicy(heartbeat_interval=0.05,
                               heartbeat_timeout=2.0,
                               backoff_base=0.05, backoff_cap=0.5)

    print("== 1. uninterrupted oracle pass (2 workers)")
    oracle = run_fleet(fleet, jobs=2)
    print(oracle.render())
    print()

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = Path(tmp) / "ckpt"
        print("== 2. supervised pass: kill shard 0, hang shard 1")
        plan = ChaosPlan(seed=1, events=(
            ChaosEvent(kind="kill", shard=0, at=10),
            ChaosEvent(kind="hang", shard=1, at=6),
        ))
        chaotic = run_fleet(fleet, jobs=2, supervise=policy,
                            chaos=plan, checkpoint_dir=str(ckpt),
                            checkpoint_every=100, quantum=32)
        print(chaotic.render())
        health = chaotic.report.health
        for shard in health["shards"]:
            if shard["kills"]:
                print(f"   shard {shard['shard']}: "
                      f"{shard['attempts']} attempts, killed for "
                      f"{shard['kills']}")
        assert chaotic.report.fingerprint() \
            == oracle.report.fingerprint()
        print("   fingerprints equal: the chaos changed nothing")
        print()

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = Path(tmp) / "ckpt"
        print("== 3. poison device: device 3 crashes every attempt")
        plan = ChaosPlan(seed=2,
                         events=poison_device(3, 0, attempts=6,
                                              at=2))
        degraded = run_fleet(fleet, jobs=2, supervise=policy,
                             chaos=plan, checkpoint_dir=str(ckpt),
                             checkpoint_every=100, quantum=32)
        print(degraded.render())
        assert degraded.report.degraded
        assert [q["device_id"]
                for q in degraded.report.quarantined] == [3]
        survivors = [r for r in oracle.report.device_results
                     if r["device_id"] != 3]
        assert degraded.report.fingerprint() \
            == FleetReport(survivors).fingerprint()
        print("   device 3 quarantined; the 15 survivors match the "
              "oracle exactly")


if __name__ == "__main__":
    main()
