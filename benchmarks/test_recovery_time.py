"""Section 3.3: reboot overhead estimate + recovery procedure timing."""

from repro.core.parity_backup import estimate_reboot_read_overhead
from repro.experiments.recovery import (
    reboot_overhead_report,
    run_spo_recovery,
)


def test_recovery_reboot_overhead(benchmark, save_report):
    scenario = benchmark.pedantic(
        lambda: run_spo_recovery(wordlines=64, page_size=4096, seed=7),
        rounds=1, iterations=1,
    )
    report = reboot_overhead_report()
    report += (
        f"\n\nend-to-end SPO scenario: lost wordline "
        f"{scenario.lost_wordline}, recovered={scenario.success}, "
        f"LSB reads during recovery={scenario.report.lsb_reads}"
    )
    save_report("recovery_reboot_overhead", report)

    # The paper's worked example: 16 chips x 2 blocks x 64 LSB pages
    # x 40 us = 81.92 ms.
    assert estimate_reboot_read_overhead(16, 2, 64) == \
        __import__("pytest").approx(81.92e-3)
    assert scenario.success
    # Recovery reads every *readable* LSB page of the slow block.
    assert scenario.report.lsb_reads == 63
