"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures,
printing the same rows/series the paper reports and persisting them
under ``benchmarks/reports/`` (pytest captures stdout, so the files
are the reliable record).  The heavyweight Figure 8 sweep runs once
per session and is shared by the 8(a)/8(b)/8(c) benchmarks.
"""

from pathlib import Path

import pytest

from repro.experiments.fig8 import run_fig8
from repro.experiments.runner import ExperimentConfig

REPORT_DIR = Path(__file__).resolve().parent / "reports"

#: Full-experiment configuration (the scaled evaluation device).
BENCH_CONFIG = ExperimentConfig()


@pytest.fixture(scope="session")
def report_dir():
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture(scope="session")
def save_report(report_dir):
    """Persist one experiment report and echo it to stdout."""

    def _save(name: str, text: str) -> None:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n===== {name} =====\n{text}\n")

    return _save


@pytest.fixture(scope="session")
def fig8_results():
    """The full Figure 8 comparison: 4 FTLs x 5 workloads."""
    return run_fig8(config=BENCH_CONFIG, utilization=0.75, seed=1)
