"""Figure 8(a): normalised IOPS of the four FTLs on five workloads."""

from repro.experiments.fig8 import FTLS, run_fig8
from repro.metrics.report import render_grouped_bars

from conftest import BENCH_CONFIG


def test_fig8a_normalized_iops(benchmark, fig8_results, save_report):
    normalized = fig8_results.normalized_iops()
    save_report("fig8a_normalized_iops",
                render_grouped_bars(normalized, FTLS))

    # Shape assertions (the paper's qualitative findings):
    for workload, values in normalized.items():
        # flexFTL outperforms both backup-burdened FPS baselines.
        assert values["flexFTL"] > values["parityFTL"], workload
        assert values["flexFTL"] > values["rtfFTL"], workload
    # flexFTL ~ pageFTL on the intensive DB loads (little idle: the
    # background collector cannot raise q), above it on Varmail.
    assert normalized["OLTP"]["flexFTL"] >= 0.88
    assert normalized["NTRX"]["flexFTL"] >= 0.88
    assert normalized["Varmail"]["flexFTL"] >= 1.02
    # Webserver is read-dominant: everyone is within a few percent.
    assert normalized["Webserver"]["flexFTL"] >= 0.95

    # Time one representative measured run for the benchmark record.
    benchmark.pedantic(
        lambda: run_fig8(workloads=("OLTP",), ftls=("flexFTL",),
                         config=BENCH_CONFIG, scale=0.1),
        rounds=1, iterations=1,
    )
