"""Extension: the RPS property generalised to TLC devices.

Section 1 of the paper: "our proposed technique can be applicable for
other NAND devices such as triple-level cell (TLC) NAND devices with a
similar program scheme".  This benchmark verifies the device-level
half of that claim at a realistic block size: under the TLC
constraint set with its over-specifications removed, every program
order still leaves at most one aggressor per word line.
"""

import random

from repro.metrics.report import render_table
from repro.nand.tlc import (
    TlcScheme,
    fps_tlc_order,
    is_valid_tlc_order,
    random_rps_tlc_order,
    rps_tlc_full_order,
    tlc_aggressor_counts,
    unconstrained_tlc_order,
)

WORDLINES = 128


def test_tlc_rps_generalisation(benchmark, save_report):
    def analyse():
        rng = random.Random(3)
        orders = {
            "FPS-TLC (staggered)": fps_tlc_order(WORDLINES),
            "RPS-TLC full (3-phase)": rps_tlc_full_order(WORDLINES),
            "RPS-TLC random": random_rps_tlc_order(WORDLINES, rng),
            "unconstrained": unconstrained_tlc_order(WORDLINES, rng),
        }
        summary = {}
        for name, order in orders.items():
            counts = tlc_aggressor_counts(order, WORDLINES)
            summary[name] = (
                max(counts),
                sum(counts) / len(counts),
                is_valid_tlc_order(order, WORDLINES, TlcScheme.RPS),
            )
        return summary

    summary = benchmark(analyse)

    rows = [[name, peak, f"{mean:.2f}", "yes" if legal else "no"]
            for name, (peak, mean, legal) in summary.items()]
    save_report(
        "tlc_extension",
        render_table(
            ["order", "max aggressors", "mean aggressors", "RPS-legal"],
            rows),
    )

    # Every RPS-TLC-legal order matches the FPS guarantee.
    for name, (peak, _, legal) in summary.items():
        if legal:
            assert peak <= 1, name
    assert summary["unconstrained"][0] > 1
    assert not summary["unconstrained"][2]
