"""Table 1: I/O characteristics of the five benchmark workloads."""

from repro.experiments.table1 import render_table1, run_table1


def test_table1_workload_characteristics(benchmark, save_report):
    characteristics = benchmark.pedantic(
        lambda: run_table1(logical_pages=16384, total_ops=20000, seed=1),
        rounds=1, iterations=1,
    )
    report = render_table1(characteristics)
    save_report("table1_workload_characteristics", report)

    # Table 1's published rows.
    assert characteristics["OLTP"].read_write_ratio == "7:3"
    assert characteristics["NTRX"].read_write_ratio == "3:7"
    assert characteristics["Webserver"].read_write_ratio == "4:1"
    assert characteristics["Varmail"].read_write_ratio == "1:1"
    assert characteristics["Fileserver"].read_write_ratio == "1:2"
    assert characteristics["OLTP"].intensiveness == "very high"
    assert characteristics["NTRX"].intensiveness == "very high"
    assert characteristics["Webserver"].intensiveness == "moderate"
    assert characteristics["Varmail"].intensiveness == "high"
    assert characteristics["Fileserver"].intensiveness == "high"
