"""Substrate sanity: IOPS scaling with device parallelism."""

from repro.experiments.scaling import run_scaling_study


def test_parallelism_scaling(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_scaling_study(channel_counts=(1, 2, 4),
                                  ops_per_chip=800),
        rounds=1, iterations=1,
    )
    save_report("scaling_study", result.render())

    iops = result.iops_by_chips()
    chips = sorted(iops)
    # More chips, more throughput — monotonic ...
    for small, large in zip(chips, chips[1:]):
        assert iops[large] > iops[small]
    # ... and reasonably efficient: quadrupling the device at least
    # doubles throughput for this intensive workload.
    assert iops[chips[-1]] >= 2.0 * iops[chips[0]]
