"""Extension: TLC burst service — RPS leverage grows with bit density.

MLC's burst mechanism peaks at 2.5x (tLSB vs the FPS average); on TLC
the same idea peaks at 5.33x.  Measured against an enforcing TLC
device walking both disciplines.
"""

from repro.experiments.tlc_burst import (
    render_tlc_burst,
    run_tlc_burst_experiment,
)


def test_tlc_burst_service(benchmark, save_report):
    outcomes = benchmark(
        lambda: run_tlc_burst_experiment(wordlines=64, burst_pages=48)
    )
    save_report("tlc_burst_service", render_tlc_burst(outcomes))

    fps, rps = outcomes
    # The three-phase order serves the whole burst with LSB programs.
    assert rps.page_type_mix == {"LSB": 48}
    assert len(fps.page_type_mix) == 3
    # Burst speedup approaches the theoretical 5.33x.
    speedup = fps.burst_service_time / rps.burst_service_time
    assert 4.0 < speedup <= 5.34
    # Capacity is NOT sacrificed: both disciplines complete the whole
    # block in exactly the same total program time.
    assert fps.block_completion_time == \
        __import__("pytest").approx(rps.block_completion_time)
