"""Figure 8(c): CDF of write bandwidth for Varmail."""

from repro.metrics.report import render_table


def test_fig8c_varmail_bandwidth_cdf(benchmark, fig8_results,
                                     save_report):
    cdf = benchmark.pedantic(lambda: fig8_results.varmail_cdf(),
                             rounds=1, iterations=1)

    fractions = [point[0] for point in next(iter(cdf.values()))]
    headers = ["CDF"] + [f"{f:.2f}" for f in fractions]
    rows = [[ftl] + [f"{mbps:.1f}" for _, mbps in points]
            for ftl, points in cdf.items()]
    peak_ratio = fig8_results.varmail_peak_ratio("flexFTL", "rtfFTL")
    report = render_table(headers, rows)
    report += (f"\n\npeak write bandwidth flexFTL / rtfFTL = "
               f"{peak_ratio:.2f}x (paper: ~2.13x)")
    save_report("fig8c_varmail_bandwidth_cdf", report)

    # flexFTL's peak write bandwidth clearly dominates the FPS FTLs
    # (the paper reports ~2.13x over rtfFTL, the best of them).
    assert peak_ratio > 1.5
    flex_top = dict(cdf["flexFTL"])[1.0]
    for other in ("pageFTL", "parityFTL", "rtfFTL"):
        assert flex_top > dict(cdf[other])[1.0]
