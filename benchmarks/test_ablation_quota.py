"""Ablation A1: the initial LSB-write quota (paper: 5% of LSB pages)."""

from repro.experiments.ablation import render_ablation, run_quota_ablation

from conftest import BENCH_CONFIG


def test_ablation_quota_fraction(benchmark, save_report):
    points = benchmark.pedantic(
        lambda: run_quota_ablation(
            fractions=(0.0125, 0.05, 0.2), workload="Varmail",
            total_ops=12000, config=BENCH_CONFIG),
        rounds=1, iterations=1,
    )
    save_report("ablation_quota_fraction", render_ablation(points))

    by_label = {point.label: point for point in points}
    # A larger quota admits longer LSB bursts: peak bandwidth should
    # not degrade as the quota grows.
    assert by_label["q0=0.2"].peak_bandwidth >= \
        0.9 * by_label["q0=0.0125"].peak_bandwidth
    assert all(point.iops > 0 for point in points)
