"""Extension: full TLC storage-system comparison (Section 1 claim).

The three-phase TLC flexFTL against the staggered FPS-TLC baseline on
the same discrete-event substrate as the MLC experiments.
"""

from repro.experiments.tlc_system import (
    render_tlc_comparison,
    run_tlc_system_comparison,
)


def test_tlc_system_comparison(benchmark, save_report):
    results = benchmark.pedantic(
        lambda: run_tlc_system_comparison(workload="Varmail",
                                          total_ops=8000, seed=1),
        rounds=1, iterations=1,
    )
    save_report("tlc_system_comparison",
                render_tlc_comparison(results))

    flex = results["tlc-flexFTL"]
    page = results["tlc-pageFTL"]
    flex_peak = max(flex.stats.write_bandwidth.samples_mbps())
    page_peak = max(page.stats.write_bandwidth.samples_mbps())
    # The steeper TLC asymmetry makes burst absorption pay even more:
    # peak write bandwidth roughly doubles over the FPS baseline.
    assert flex_peak > 1.5 * page_peak
    # Throughput stays within the baseline's ballpark (the deferred
    # CSB/MSB debt is repaid in idle time, not on the critical path).
    assert flex.iops > 0.9 * page.iops
    # Both served every request.
    assert flex.stats.completed_requests == \
        page.stats.completed_requests
