"""Substrate ablation: greedy vs cost-benefit GC victim selection.

All four of the paper's FTLs use greedy selection; this sweep
quantifies what an age-weighted cost-benefit policy would change on a
write-intensive workload under space pressure.  (Which policy wins
depends on the workload's hot/cold separation and horizon — the
point of the ablation is the measured difference, not a fixed
winner.)
"""

from repro.experiments.ablation import (
    render_ablation,
    run_gc_policy_ablation,
)

from conftest import BENCH_CONFIG


def test_ablation_gc_policy(benchmark, save_report):
    points = benchmark.pedantic(
        lambda: run_gc_policy_ablation(total_ops=12000,
                                       config=BENCH_CONFIG),
        rounds=1, iterations=1,
    )
    save_report("ablation_gc_policy", render_ablation(points))

    assert len(points) == 2
    by_label = {point.label: point for point in points}
    greedy = by_label["gc=greedy"].result
    cost_benefit = by_label["gc=cost_benefit"].result
    # Both policies keep the system live and GC-active ...
    assert greedy.erases > 0 and cost_benefit.erases > 0
    # ... and within a sane band of each other (a broken policy would
    # blow write amplification up by integer factors).
    ratio = cost_benefit.write_amplification / greedy.write_amplification
    assert 0.7 < ratio < 1.4
