"""Figures 2(b)/3: program-order generation and validation at the
paper's block size (128 word lines, 256 pages)."""

import random

from repro.core.rps import (
    describe_order,
    fps_order,
    is_valid_order,
    random_rps_order,
    rps_full_order,
    rps_half_order,
)
from repro.metrics.report import render_table
from repro.nand.sequence import SequenceScheme

WORDLINES = 128  # the paper's 256-page block


def test_fig3_order_generation_and_validation(benchmark, save_report):
    def generate_and_validate():
        rng = random.Random(1)
        orders = {
            "FPS (Fig. 2(b))": fps_order(WORDLINES),
            "RPSfull (Fig. 3(a))": rps_full_order(WORDLINES),
            "RPShalf (Fig. 3(b))": rps_half_order(WORDLINES),
            "RPSrandom (Fig. 3(c))": random_rps_order(WORDLINES, rng),
        }
        validity = {
            name: (
                is_valid_order(order, WORDLINES, SequenceScheme.RPS),
                is_valid_order(order, WORDLINES, SequenceScheme.FPS),
            )
            for name, order in orders.items()
        }
        return orders, validity

    orders, validity = benchmark(generate_and_validate)

    rows = [[name, "yes" if rps else "no", "yes" if fps else "no"]
            for name, (rps, fps) in validity.items()]
    report = render_table(["order", "RPS-legal", "FPS-legal"], rows)
    report += ("\n\nFPS head: "
               + describe_order(orders["FPS (Fig. 2(b))"][:8]) + " ...")
    report += ("\nRPSfull head: "
               + describe_order(orders["RPSfull (Fig. 3(a))"][:8]) + " ...")
    save_report("fig3_program_orders", report)

    assert all(rps for rps, _ in validity.values())
    assert validity["FPS (Fig. 2(b))"][1]
    assert not validity["RPSfull (Fig. 3(a))"][1]  # needs RPS
