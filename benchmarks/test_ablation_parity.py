"""Ablation A3: parity-sharing granularity.

The paper's argument: under FPS at most two LSB pages can share one
parity page, while RPS + 2PO lets a whole block share one.  This sweep
quantifies the backup-write and erasure cost at several granularities.
"""

from repro.experiments.ablation import render_ablation, run_parity_ablation

from conftest import BENCH_CONFIG


def test_ablation_parity_granularity(benchmark, save_report):
    points = benchmark.pedantic(
        lambda: run_parity_ablation(
            intervals=(2, 8, 0), workload="Fileserver",
            total_ops=12000, config=BENCH_CONFIG),
        rounds=1, iterations=1,
    )
    save_report("ablation_parity_granularity",
                render_ablation(list(points.values())))

    per_block = points["flexFTL (per block)"].result
    per_two = points["flexFTL (per 2 LSBs)"].result
    per_eight = points["flexFTL (per 8 LSBs)"].result
    parity_ftl = points["parityFTL (per 2 LSBs, FPS)"].result

    # Backup-write volume falls monotonically with coarser sharing.
    assert per_block.counters["backup_programs"] < \
        per_eight.counters["backup_programs"] < \
        per_two.counters["backup_programs"]
    # The per-block scheme (only possible under RPS) writes an order
    # of magnitude fewer parity pages than the FPS ceiling.
    assert per_block.counters["backup_programs"] * 5 < \
        parity_ftl.counters["backup_programs"]
    # ... which shows up as fewer erasures.
    assert per_block.erases <= parity_ftl.erases
