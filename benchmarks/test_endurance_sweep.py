"""Extension: endurance sweep — BER vs P/E cycles through the ECC lens.

Extends Figure 4(b) along the stress axis and converts raw BER into
usable lifetime: RPS must track FPS cycle for cycle.
"""

from repro.experiments.endurance import run_endurance_sweep


def test_endurance_sweep(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_endurance_sweep(blocks=12, wordlines=24, seed=4),
        rounds=1, iterations=1,
    )
    save_report("endurance_sweep", result.render())

    # RPSfull tracks FPS at every stress point (identical aggressor
    # profiles => identical BER curves => identical endurance).
    assert result.median_ber["RPSfull"] == result.median_ber["FPS"]
    assert result.endurance["RPSfull"] == result.endurance["FPS"]
    assert result.endurance["FPS"] is not None
    # The unconstrained order loses endurance outright.
    fps_limit = result.endurance["FPS"]
    unconstrained_limit = result.endurance["unconstrained"]
    assert unconstrained_limit is None \
        or unconstrained_limit < fps_limit
    # BER grows with stress for every scheme.
    for bers in result.median_ber.values():
        assert bers[-1] >= bers[0]
