"""Complementary analysis: read-latency percentiles per FTL.

Reads queue behind in-flight programs, so the LSB/MSB mix each FTL
writes shapes the read tail.  Reported for NTRX (write-heavy with
interleaved reads, so reads routinely collide with programs).
"""

from repro.experiments.latency import (
    render_read_latency,
    run_read_latency_comparison,
)
from repro.metrics.latency import latency_summary

from conftest import BENCH_CONFIG


def test_read_latency_percentiles(benchmark, save_report):
    results = benchmark.pedantic(
        lambda: run_read_latency_comparison(
            workload="NTRX", total_ops=8000, config=BENCH_CONFIG),
        rounds=1, iterations=1,
    )
    save_report("read_latency_percentiles",
                render_read_latency(results))

    summaries = {
        ftl: latency_summary(result.stats.read_latencies)
        for ftl, result in results.items()
        if result.stats.read_latencies
    }
    assert set(summaries) == {"pageFTL", "parityFTL", "rtfFTL",
                              "flexFTL"}
    for ftl, summary in summaries.items():
        # Reads cannot finish faster than the device read time and
        # should not stall longer than a handful of program+erase
        # windows even at the tail.
        assert summary["p50"] >= 40e-6, ftl
        assert summary["p99"] < 0.1, ftl
    # The FPS backup FTLs interpose extra program traffic in front of
    # reads; their median read should not beat pageFTL's.
    assert summaries["parityFTL"]["p50"] >= \
        0.9 * summaries["pageFTL"]["p50"]
