"""Related-work comparison: LSB-only slcFTL [4] vs flexFTL (Section 5).

The paper argues that the LSB-only approach reaches SLC-class speed
but "wastes half the capacity of the block", while flexFTL keeps the
speed without the sacrifice.  This benchmark runs both on an equal
footprint (sized to fit slcFTL's halved logical space) and reports
the cost of the wasted half: structurally higher utilisation, hence
heavier garbage collection and several times more erasures.
"""

from repro.experiments.runner import experiment_span, run_workload
from repro.metrics.report import render_table
from repro.workloads.benchmarks import build_workload

from conftest import BENCH_CONFIG


def test_related_work_slc_mode(benchmark, save_report):
    span = experiment_span(BENCH_CONFIG, utilization=0.75,
                           ftls=("slcFTL",))
    streams = build_workload("Fileserver", span, total_ops=12000,
                             seed=1)

    def run_all():
        return {
            name: run_workload(ftl_name=name, streams=streams,
                               config=BENCH_CONFIG)
            for name in ("pageFTL", "flexFTL", "slcFTL")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        bandwidth = result.stats.write_bandwidth
        rows.append([
            name, f"{result.iops:.0f}", result.erases,
            f"{result.write_amplification:.2f}",
            f"{bandwidth.percentile(1.0):.1f}",
            result.logical_pages,
        ])
    save_report(
        "related_work_slc_mode",
        render_table(["FTL", "IOPS", "erases", "WAF",
                      "peak BW [MB/s]", "logical pages"], rows),
    )

    flex = results["flexFTL"]
    slc = results["slcFTL"]
    # slcFTL exposes only half the capacity ...
    assert slc.logical_pages < 0.6 * flex.logical_pages
    # ... reaches flexFTL-class speed (that part of [4] is real) ...
    assert slc.iops > 0.9 * flex.iops
    # ... but pays for the wasted half with several times the
    # erasures — the paper's §5 argument, quantified.
    assert slc.erases > 2.5 * flex.erases
