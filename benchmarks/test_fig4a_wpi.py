"""Figure 4(a): Vth distribution widths (WPi) under FPS vs RPS orders.

Population mirrors the paper: 90 blocks, >5000 pages per scheme.
"""

from repro.experiments.fig4 import run_fig4


def test_fig4a_wpi_distributions(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_fig4(blocks=90, wordlines=64, seed=2),
        rounds=1, iterations=1,
    )
    save_report("fig4a_wpi_distributions", result.wpi_table())

    fps = result.results["FPS"]
    # Paper: WPi's under RPSfull and RPShalf were not increased over FPS.
    for scheme in ("RPSfull", "RPShalf"):
        assert result.results[scheme].wpi.median <= \
            fps.wpi.median * 1.02
    # The unconstrained order of Figure 2(a) is visibly worse, which is
    # why program-order constraints exist at all.
    assert result.results["unconstrained"].wpi.median > fps.wpi.median
    assert result.results["unconstrained"].wpi.maximum > fps.wpi.maximum
