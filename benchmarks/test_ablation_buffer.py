"""Ablation: write-buffer capacity.

The buffer is the policy manager's sensor (``u``) *and* the burst
absorber.  Too small and every burst is drain-limited from the first
page; large enough and bursts vanish into RAM entirely, taking the
FTL differences with them.  The sweep shows where the paper-relevant
regime lives.
"""

import dataclasses

from repro.experiments.sweep import render_sweep, run_sweep

from conftest import BENCH_CONFIG


def test_ablation_buffer_capacity(benchmark, save_report):
    def sweep():
        return run_sweep(
            axes={"buffer_pages": (64, 256, 1024)},
            config_builder=lambda p: dataclasses.replace(
                BENCH_CONFIG, buffer_pages=int(p["buffer_pages"])),
            ftl="flexFTL", workload="Varmail", total_ops=12000,
        )

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report("ablation_buffer_capacity", render_sweep(rows))

    by_size = {row.params["buffer_pages"]: row for row in rows}
    # A larger buffer can only help admission-side IOPS.
    assert by_size[1024].result.iops >= 0.95 * by_size[64].result.iops
    assert all(row.result.iops > 0 for row in rows)
