"""Figure 8(b): normalised block erasure counts of the four FTLs."""

from repro.experiments.fig8 import FTLS, run_fig8
from repro.metrics.report import render_grouped_bars

from conftest import BENCH_CONFIG


def test_fig8b_normalized_erasures(benchmark, fig8_results, save_report):
    normalized = fig8_results.normalized_erasures()
    save_report("fig8b_normalized_erasures",
                render_grouped_bars(normalized, FTLS))

    raw = fig8_results.erasures()
    flex_vs_parity = []
    flex_vs_rtf = []
    for workload, values in raw.items():
        # Lifetime ordering: flexFTL erases less than both FPS FTLs
        # that pay backup overhead; pageFTL (no backup at all) is the
        # floor.
        assert values["flexFTL"] < values["parityFTL"], workload
        assert values["flexFTL"] < values["rtfFTL"], workload
        assert values["pageFTL"] <= values["flexFTL"], workload
        if values["flexFTL"] > 0:
            flex_vs_parity.append(
                1 - values["flexFTL"] / values["parityFTL"])
            flex_vs_rtf.append(1 - values["flexFTL"] / values["rtfFTL"])
    # Paper: erasures reduced by up to 30% vs parityFTL and up to 32%
    # vs rtfFTL; at least one workload should show a >= 15% reduction.
    assert max(flex_vs_parity) >= 0.10
    assert max(flex_vs_rtf) >= 0.10

    benchmark.pedantic(
        lambda: run_fig8(workloads=("Fileserver",), ftls=("parityFTL",),
                         config=BENCH_CONFIG, scale=0.1),
        rounds=1, iterations=1,
    )
