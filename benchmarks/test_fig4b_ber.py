"""Figure 4(b): bit error rates at the worst-case condition
(3K P/E cycles + 1-year retention) under FPS vs RPS orders."""

from repro.experiments.fig4 import run_fig4
from repro.reliability.ber import WORST_CASE


def test_fig4b_bit_error_rates(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_fig4(blocks=90, wordlines=64,
                         condition=WORST_CASE, seed=3),
        rounds=1, iterations=1,
    )
    save_report("fig4b_bit_error_rates", result.ber_table())

    fps = result.results["FPS"]
    # Paper: BER for the RPS schemes was not higher than for FPS under
    # the worst-case operating conditions.
    for scheme in ("RPSfull", "RPShalf"):
        assert result.results[scheme].ber.median <= \
            fps.ber.median * 1.02 + 1e-5
    assert result.rps_matches_fps()
    # BERs land in the paper's plotted range (1e-4 .. 1e-1).
    assert 1e-5 < fps.ber.median < 1e-2
    assert result.results["unconstrained"].ber.median > fps.ber.median
