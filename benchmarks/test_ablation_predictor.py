"""Extension ablation: the Section 6 future-write predictor.

The paper's closing direction: with a future-write estimate, the
background collector can reclaim blocks just in time so more LSB
writes serve future bursts.  The regime where this matters is light
device pressure — the free-block threshold never trips, so without a
predictor the quota starves across bursts.
"""

import dataclasses

from repro.experiments.runner import (
    ExperimentConfig,
    experiment_span,
    run_workload,
)
from repro.metrics.report import render_table
from repro.workloads.benchmarks import build_workload

from conftest import BENCH_CONFIG


def test_ablation_future_write_predictor(benchmark, save_report):
    config = BENCH_CONFIG
    span = experiment_span(config, utilization=0.5)
    streams = build_workload("Varmail", span, total_ops=14400, seed=1)

    def run_both():
        base = run_workload(ftl_name="flexFTL", streams=streams,
                            config=config)
        with_predictor = run_workload(
            ftl_name="flexFTL", streams=streams,
            config=dataclasses.replace(config, flex_use_predictor=True))
        reference = run_workload(ftl_name="pageFTL", streams=streams,
                                 config=config)
        return base, with_predictor, reference

    base, with_predictor, reference = benchmark.pedantic(
        run_both, rounds=1, iterations=1)

    rows = []
    for label, result in [
        ("flexFTL (paper)", base),
        ("flexFTL + predictor (Sec. 6)", with_predictor),
        ("pageFTL (reference)", reference),
    ]:
        bandwidth = result.stats.write_bandwidth
        rows.append([
            label, f"{result.iops:.0f}",
            f"{bandwidth.percentile(0.9):.1f}",
            result.erases,
            f"{result.write_amplification:.2f}",
            result.counters.get("quota", "-"),
        ])
    save_report(
        "ablation_future_write_predictor",
        render_table(["configuration", "IOPS", "p90 BW [MB/s]",
                      "erases", "WAF", "final q"], rows),
    )

    # Just-in-time collection recovers the quota the bursts spend ...
    assert with_predictor.counters["quota"] > base.counters["quota"]
    # ... which buys IOPS in this regime ...
    assert with_predictor.iops > 1.05 * base.iops
    assert with_predictor.iops > reference.iops
    # ... at an erase cost (the paper's implied trade-off).
    assert with_predictor.erases >= base.erases
