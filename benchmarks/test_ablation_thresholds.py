"""Ablation A2: the utilisation thresholds (paper: u_high=0.8,
u_low=0.1)."""

from repro.experiments.ablation import (
    render_ablation,
    run_threshold_ablation,
)

from conftest import BENCH_CONFIG


def test_ablation_utilization_thresholds(benchmark, save_report):
    points = benchmark.pedantic(
        lambda: run_threshold_ablation(
            pairs=((0.5, 0.05), (0.8, 0.1), (0.99, 0.0)),
            workload="Varmail", total_ops=12000, config=BENCH_CONFIG),
        rounds=1, iterations=1,
    )
    save_report("ablation_utilization_thresholds",
                render_ablation(points))

    assert len(points) == 3
    assert all(point.iops > 0 for point in points)
    # A lower u_high engages LSB-burst mode earlier; peak bandwidth
    # should be at least as good as with a nearly-disabled trigger.
    eager = points[0]
    reluctant = points[2]
    assert eager.peak_bandwidth >= 0.9 * reluctant.peak_bandwidth
